#include "gpu/gpu_context.h"

#include "common/status.h"
#include "obs/trace.h"

namespace memphis::gpu {

void GpuStats::RegisterMetrics(obs::MetricsRegistry* registry,
                               const std::string& prefix) {
  registry->Register(prefix + "mallocs", &mallocs);
  registry->Register(prefix + "frees", &frees);
  registry->Register(prefix + "kernels", &kernels);
  registry->Register(prefix + "h2d_copies", &h2d_copies);
  registry->Register(prefix + "d2h_copies", &d2h_copies);
  registry->Register(prefix + "defrags", &defrags);
  registry->Register(prefix + "alloc_bytes", &alloc_bytes);
  registry->Register(prefix + "malloc_time_s", &malloc_time);
  registry->Register(prefix + "free_time_s", &free_time);
  registry->Register(prefix + "copy_time_s", &copy_time);
  registry->Register(prefix + "kernel_time_s", &kernel_time);
}

GpuContext::GpuContext(size_t device_memory_bytes,
                       const sim::CostModel* cost_model)
    : arena_(device_memory_bytes), cost_model_(cost_model) {}

std::optional<GpuBufferPtr> GpuContext::Malloc(size_t bytes, double* now) {
  auto handle = arena_.Alloc(bytes);
  if (!handle.has_value()) return std::nullopt;
  // cudaMalloc forces a device synchronization (Section 2.3).
  *now = stream_.Synchronize(*now) + cost_model_->gpu_malloc_latency;
  stats_.malloc_time += cost_model_->gpu_malloc_latency;
  ++stats_.mallocs;
  stats_.alloc_bytes += static_cast<int64_t>(bytes);
  MEMPHIS_TRACE_INSTANT1("gpu", "malloc", "bytes",
                         static_cast<double>(bytes));
  auto buffer = std::make_shared<GpuBuffer>();
  buffer->handle = *handle;
  buffer->bytes = bytes;
  return buffer;
}

void GpuContext::Free(const GpuBufferPtr& buffer, double* now) {
  MEMPHIS_CHECK(buffer != nullptr);
  *now = stream_.Synchronize(*now) + cost_model_->gpu_free_latency;
  stats_.free_time += cost_model_->gpu_free_latency;
  ++stats_.frees;
  arena_.Free(buffer->handle);
  buffer->data.reset();
}

void GpuContext::LaunchKernel(const GpuBufferPtr& output, MatrixPtr result,
                              double flops, double bytes, double* now) {
  MEMPHIS_CHECK(output != nullptr);
  const double duration = cost_model_->GpuKernelTime(flops, bytes);
  stream_.Launch(*now, duration, "kernel");
  *now += cost_model_->gpu_launch_overhead;  // Host returns immediately.
  MEMPHIS_TRACE_INSTANT2("gpu", "kernel-launch", "flops", flops, "bytes",
                         bytes);
  stats_.kernel_time += duration;
  ++stats_.kernels;
  output->data = std::move(result);
}

MatrixPtr GpuContext::CopyD2H(const GpuBufferPtr& buffer, double* now) {
  MEMPHIS_CHECK(buffer != nullptr && buffer->data != nullptr);
  // D2H transfer introduces a synchronization barrier (Section 2.3).
  const double transfer =
      cost_model_->D2HTime(static_cast<double>(buffer->bytes));
  *now = stream_.Synchronize(*now) + transfer;
  stats_.copy_time += transfer;
  ++stats_.d2h_copies;
  MEMPHIS_TRACE_INSTANT1("gpu", "d2h-copy", "bytes",
                         static_cast<double>(buffer->bytes));
  return buffer->data;
}

void GpuContext::CopyH2D(const GpuBufferPtr& buffer, MatrixPtr value,
                         double* now) {
  MEMPHIS_CHECK(buffer != nullptr && value != nullptr);
  MEMPHIS_CHECK_MSG(value->SizeInBytes() <= buffer->bytes,
                    "H2D copy larger than device buffer");
  const double transfer =
      cost_model_->H2DTime(static_cast<double>(value->SizeInBytes()));
  *now = stream_.Synchronize(*now) + transfer;
  stats_.copy_time += transfer;
  ++stats_.h2d_copies;
  MEMPHIS_TRACE_INSTANT1("gpu", "h2d-copy", "bytes",
                         static_cast<double>(buffer->bytes));
  buffer->data = std::move(value);
}

void GpuContext::Synchronize(double* now) {
  *now = stream_.Synchronize(*now) + cost_model_->gpu_sync_latency;
}

void GpuContext::Defragment(double* now) {
  MEMPHIS_TRACE_SPAN("gpu", "defragment");
  *now = stream_.Synchronize(*now);
  const size_t moved = arena_.Defragment();
  // Defragmentation is device-to-device copy traffic.
  *now += static_cast<double>(moved) / cost_model_->gpu_mem_bandwidth +
          cost_model_->gpu_sync_latency;
  ++stats_.defrags;
}

}  // namespace memphis::gpu
