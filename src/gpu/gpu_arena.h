#ifndef MEMPHIS_GPU_GPU_ARENA_H_
#define MEMPHIS_GPU_GPU_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

namespace memphis::gpu {

/// First-fit free-list allocator over a contiguous simulated device extent.
/// This is a *real* allocator -- blocks are split on allocation and coalesced
/// with neighbors on free -- so external fragmentation, failed allocations
/// despite sufficient total free space, and defragmentation are genuine
/// phenomena, which the recycling logic of Section 4.2 depends on.
class GpuArena {
 public:
  explicit GpuArena(size_t capacity_bytes);

  /// Allocates `bytes` (first fit). Returns a handle, or nullopt when no
  /// contiguous free block is large enough (the cudaMalloc failure case in
  /// Algorithm 1).
  std::optional<uint64_t> Alloc(size_t bytes);

  /// Releases a handle; coalesces with adjacent free blocks.
  void Free(uint64_t handle);

  /// Compacts all live blocks to the front of the extent, merging all free
  /// space into one block. Returns the number of bytes moved (the cost
  /// driver of the "full defragmentation" fallback).
  size_t Defragment();

  size_t capacity() const { return capacity_; }
  size_t allocated_bytes() const { return allocated_; }
  size_t free_bytes() const { return capacity_ - allocated_; }

  /// Size of the largest contiguous free block (fragmentation metric).
  size_t LargestFreeBlock() const;

  /// External fragmentation in [0, 1]: 1 - largest_free / total_free.
  double Fragmentation() const;

  size_t num_live_blocks() const { return live_.size(); }
  size_t BlockSize(uint64_t handle) const;
  size_t BlockOffset(uint64_t handle) const;

 private:
  struct LiveBlock {
    size_t offset;
    size_t size;
  };

  size_t capacity_;
  size_t allocated_ = 0;
  uint64_t next_handle_ = 1;
  std::map<size_t, size_t> free_by_offset_;        // offset -> size.
  std::unordered_map<uint64_t, LiveBlock> live_;   // handle -> block.
};

}  // namespace memphis::gpu

#endif  // MEMPHIS_GPU_GPU_ARENA_H_
