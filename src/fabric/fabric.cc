#include "fabric/fabric.h"

#include <algorithm>
#include <utility>

#include "common/status.h"
#include "obs/trace.h"

namespace memphis::fabric {

ServingFabric::ServingFabric(const FabricConfig& config)
    : config_(config),
      store_(ExchangeCostModel(config.exchange)),
      router_(std::max(1, config.num_sites), config.virtual_nodes),
      timeline_("fabric.sites", std::max(1, config.num_sites)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  submitted_ = registry.GetCounter("fabric.submitted");
  completed_ = registry.GetCounter("fabric.completed");
  shed_ = registry.GetCounter("fabric.shed");
  failed_over_ = registry.GetCounter("fabric.failed_over");
  rebalanced_ = registry.GetCounter("fabric.rebalanced_tenants");

  const int n = std::max(1, config_.num_sites);
  MutexLock lock(mu_);
  managers_.resize(static_cast<size_t>(n));
  inflight_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    managers_[static_cast<size_t>(i)] =
        std::make_unique<serve::SessionManager>(SiteServeConfig(i));
  }
}

ServingFabric::~ServingFabric() { Shutdown(); }

serve::ServeConfig ServingFabric::SiteServeConfig(int site) const {
  serve::ServeConfig serve = config_.serve;
  if (!config_.persist_root.empty()) {
    serve.store_persist_dir =
        config_.persist_root + "/site" + std::to_string(site);
    if (serve.store_persist_budget == 0) {
      serve.store_persist_budget = config_.persist_budget;
    }
  }
  return serve;
}

FabricTicketPtr ServingFabric::Submit(const serve::ScriptRequest& request) {
  MEMPHIS_TRACE_SPAN("fabric", "fabric.submit");
  auto ticket = std::make_shared<FabricTicket>();
  ticket->request = request;
  MutexLock lock(mu_);
  const int site = router_.Place(request.tenant);
  MEMPHIS_CHECK_MSG(managers_[static_cast<size_t>(site)] != nullptr,
                "router placed a tenant on a dead site");
  if (config_.cross_site_reuse) {
    // Pull whatever other sites already published for this tenant before
    // the request runs; Put() dedups, so repeats are cheap and only the
    // first arrival of an entry pays its exchange charge.
    RewarmTenantLocked(request.tenant, site);
  }
  ticket->site = site;
  ticket->ticket = managers_[static_cast<size_t>(site)]->Submit(request);
  inflight_[static_cast<size_t>(site)].push_back(ticket);
  submitted_->Add(1);
  return ticket;
}

serve::RequestResult ServingFabric::Resolve(const FabricTicketPtr& ticket) {
  MEMPHIS_CHECK(ticket != nullptr && ticket->ticket != nullptr);
  while (true) {
    serve::RequestTicketPtr current;
    {
      MutexLock lock(mu_);
      current = ticket->ticket;
    }
    current->Wait();
    MutexLock lock(mu_);
    // A failover swapped in a fresh ticket while we waited on the old one:
    // follow the request to its new site.
    if (current != ticket->ticket) continue;
    const serve::RequestResult result = current->result();
    AccountLocked(ticket, result);
    return result;
  }
}

void ServingFabric::AccountLocked(const FabricTicketPtr& ticket,
                                  const serve::RequestResult& result) {
  if (ticket->accounted) return;
  ticket->accounted = true;
  const size_t site = static_cast<size_t>(ticket->site);
  if (result.outcome == serve::RequestOutcome::kCompleted) {
    completed_->Add(1);
    // The request's simulated run lands on its site's lane of the shared
    // fabric timeline: per-site work serializes, sites overlap freely.
    timeline_.ReserveLane(ticket->site, 0.0, result.sim_seconds,
                          "fabric.request");
    if (config_.cross_site_reuse && managers_[site] != nullptr) {
      SharedLineageStore* store = managers_[site]->mutable_store();
      if (store != nullptr) {
        store_.Publish(ticket->site, ticket->request.tenant,
                       store->ExportPartition(ticket->request.tenant));
      }
    }
  }
  std::vector<FabricTicketPtr>& list = inflight_[site];
  list.erase(std::remove(list.begin(), list.end(), ticket), list.end());
}

RebalanceReport ServingFabric::KillSite(int site) {
  std::unique_ptr<serve::SessionManager> dead;
  std::vector<FabricTicketPtr> affected;
  RebalanceReport report;
  {
    MutexLock lock(mu_);
    MEMPHIS_CHECK(site >= 0 && site < static_cast<int>(managers_.size()));
    MEMPHIS_CHECK_MSG(managers_[static_cast<size_t>(site)] != nullptr,
                  "site is already dead");
    report.moves = router_.KillSite(site);
    dead = std::move(managers_[static_cast<size_t>(site)]);
    affected.swap(inflight_[static_cast<size_t>(site)]);
  }

  // Drain outside the fabric lock: queued requests reject, in-flight ones
  // finish, workers join. After this every affected ticket is terminal.
  dead->Shutdown();

  // Salvage the dead site's store into the fabric tier before the site
  // object dies; survivors re-warm the moved tenants from here.
  if (config_.cross_site_reuse && dead->mutable_store() != nullptr) {
    for (const TenantMove& move : report.moves) {
      store_.Publish(site, move.tenant,
                     dead->mutable_store()->ExportPartition(move.tenant));
    }
  }

  // Exactly-once classification: every affected request ends up in exactly
  // one of completed / shed / failed_over (the accounted latch arbitrates
  // against racing Resolve() calls).
  report.affected = static_cast<int>(affected.size());
  for (const FabricTicketPtr& ticket : affected) {
    ticket->ticket->Wait();
    MutexLock lock(mu_);
    const serve::RequestResult result = ticket->ticket->result();
    if (ticket->accounted) {
      // A racing Resolve() already returned this outcome to its caller;
      // report what the caller saw rather than re-deciding.
      if (result.outcome == serve::RequestOutcome::kCompleted) {
        ++report.completed;
      } else {
        ++report.shed;
      }
      continue;
    }
    if (result.outcome == serve::RequestOutcome::kCompleted) {
      AccountLocked(ticket, result);
      ++report.completed;
      continue;
    }
    if (ticket->request.deadline_ms > 0) {
      // Deadline-bearing work is shed explicitly, never silently replayed:
      // the deadline was promised against the original submission time.
      ticket->accounted = true;
      shed_->Add(1);
      ++report.shed;
      continue;
    }
    const int target = router_.Place(ticket->request.tenant);
    MEMPHIS_CHECK(managers_[static_cast<size_t>(target)] != nullptr);
    ticket->ticket = managers_[static_cast<size_t>(target)]->Submit(
        ticket->request);
    ticket->site = target;
    ticket->failed_over = true;
    inflight_[static_cast<size_t>(target)].push_back(ticket);
    failed_over_->Add(1);
    ++report.failed_over;
  }

  {
    MutexLock lock(mu_);
    for (const TenantMove& move : report.moves) {
      report.rewarmed_entries += RewarmTenantLocked(move.tenant, move.to);
    }
    rebalanced_->Add(static_cast<int64_t>(report.moves.size()));
  }
  return report;
}

RebalanceReport ServingFabric::RejoinSite(int site) {
  MEMPHIS_CHECK(site >= 0 && site < num_sites());
  // Rehydration happens in the constructor: a fresh manager over the same
  // durable directory replays the site's persisted partitions before
  // serving (cache/persist.h warm restart).
  auto fresh = std::make_unique<serve::SessionManager>(SiteServeConfig(site));
  RebalanceReport report;
  MutexLock lock(mu_);
  MEMPHIS_CHECK_MSG(managers_[static_cast<size_t>(site)] == nullptr,
                "site is already alive");
  managers_[static_cast<size_t>(site)] = std::move(fresh);
  report.moves = router_.RejoinSite(site);
  for (const TenantMove& move : report.moves) {
    report.rewarmed_entries += RewarmTenantLocked(move.tenant, site);
  }
  rebalanced_->Add(static_cast<int64_t>(report.moves.size()));
  return report;
}

int ServingFabric::RewarmTenantLocked(const std::string& tenant, int target) {
  serve::SessionManager* manager = managers_[static_cast<size_t>(target)].get();
  if (manager == nullptr) return 0;
  SharedLineageStore* store = manager->mutable_store();
  if (store == nullptr) return 0;
  return store_.RewarmTenant(tenant, target, store, &exchange_seconds_);
}

int ServingFabric::SiteOf(const std::string& tenant) {
  MutexLock lock(mu_);
  return router_.Place(tenant);
}

bool ServingFabric::alive(int site) {
  MutexLock lock(mu_);
  return router_.alive(site);
}

double ServingFabric::SiteVirtualSeconds(int site) {
  MutexLock lock(mu_);
  return timeline_.lane_available_at(site);
}

double ServingFabric::ExchangeSeconds() {
  MutexLock lock(mu_);
  return exchange_seconds_;
}

serve::SessionManager& ServingFabric::site_manager(int site) {
  MutexLock lock(mu_);
  serve::SessionManager* manager =
      managers_[static_cast<size_t>(site)].get();
  MEMPHIS_CHECK_MSG(manager != nullptr, "site is dead");
  return *manager;
}

void ServingFabric::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  std::vector<std::unique_ptr<serve::SessionManager>> managers;
  {
    MutexLock lock(mu_);
    managers.swap(managers_);
    managers_.resize(managers.size());
  }
  for (std::unique_ptr<serve::SessionManager>& manager : managers) {
    if (manager != nullptr) manager->Shutdown();
  }
}

}  // namespace memphis::fabric
