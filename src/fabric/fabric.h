#ifndef MEMPHIS_FABRIC_FABRIC_H_
#define MEMPHIS_FABRIC_FABRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "fabric/exchange.h"
#include "fabric/fabric_store.h"
#include "fabric/router.h"
#include "serve/session_manager.h"
#include "sim/timeline.h"

namespace memphis::fabric {

/// Geo-distributed serving fabric configuration.
struct FabricConfig {
  int num_sites = 2;
  /// Default staleness bound K for round engines driven over this fabric
  /// (mirrors SystemConfig::staleness_bound; see fabric/rounds.h).
  int staleness_bound = 0;
  /// Share broadcast-derived intermediates across sites through the
  /// FabricStore tier. Off = site-isolated stores (the baseline every
  /// cross-site number is compared against).
  bool cross_site_reuse = true;
  /// Per-site serving template: every site gets its own SessionManager
  /// built from a copy of this.
  serve::ServeConfig serve;
  /// When set, site i's shared store persists under persist_root +
  /// "/site<i>" -- a rejoining site rehydrates from its own durable tier.
  std::string persist_root;
  /// Durable-tier budget used when `serve.store_persist_budget` is 0.
  size_t persist_budget = 4ull << 20;
  ExchangeConfig exchange;
  int virtual_nodes = 64;
};

/// A fabric-tracked request: the original request (kept for failover
/// resubmission), the live serve ticket, and where it currently runs.
/// Mutable fields are guarded by the fabric's mutex; read them through
/// Resolve()/reports, not directly from racing threads.
struct FabricTicket {
  serve::ScriptRequest request;
  serve::RequestTicketPtr ticket;
  int site = -1;
  bool failed_over = false;
  bool accounted = false;  // Fabric-internal exactly-once latch.
};
using FabricTicketPtr = std::shared_ptr<FabricTicket>;

/// Explicit outcome accounting of one rebalance (kill or rejoin). The
/// exactly-once contract: affected == completed + shed + failed_over --
/// every request caught by a site death terminates exactly one way, and a
/// failed-over request's continued life is tracked at its new site.
struct RebalanceReport {
  std::vector<TenantMove> moves;
  int affected = 0;
  int completed = 0;    // Finished at the dying site before the drain.
  int shed = 0;         // Deadline-bearing; rejected rather than replayed.
  int failed_over = 0;  // Resubmitted to the tenant's new site.
  int rewarmed_entries = 0;  // Store entries pushed to the new sites.
};

/// The geo-distributed serving fabric (DESIGN.md §5j): consistent-hash
/// tenant routing over per-site SessionManagers, a fabric-level reuse tier
/// above the per-site SharedLineageStores, per-site virtual-time lanes in
/// one shared MultiLaneTimeline, and explicit site-failure / rejoin
/// rebalancing with re-warm.
///
/// Lock rank kFabric sits at the very top of the table: Submit and the
/// rebalance paths hold it across SessionManager::Submit and store warms
/// (every serve/cache rank is above it). SessionManager worker threads
/// never take fabric locks, so a fabric-held drain cannot deadlock.
class ServingFabric {
 public:
  explicit ServingFabric(const FabricConfig& config);
  ~ServingFabric();

  ServingFabric(const ServingFabric&) = delete;
  ServingFabric& operator=(const ServingFabric&) = delete;

  /// Routes the request's tenant to its site (importing the tenant's
  /// cross-site store entries first, when enabled) and submits it there.
  FabricTicketPtr Submit(const serve::ScriptRequest& request)
      MEMPHIS_EXCLUDES(mu_);

  /// Waits for the ticket's terminal result -- following a failover to the
  /// new site's ticket if one happens mid-wait -- and accounts it exactly
  /// once (virtual site-lane time, fabric outcome counters, store publish).
  serve::RequestResult Resolve(const FabricTicketPtr& ticket)
      MEMPHIS_EXCLUDES(mu_);

  /// Kills a site: sheds its tenants to the survivors (explicit
  /// re-partitioning via the consistent-hash ring), drains the dead
  /// manager, classifies every affected in-flight request exactly once
  /// (completed / shed / failed-over), and re-warms moved tenants at their
  /// new sites from the fabric tier.
  RebalanceReport KillSite(int site) MEMPHIS_EXCLUDES(mu_);

  /// Re-admits a dead site: a fresh SessionManager rehydrates from the
  /// site's durable store tier, the ring moves the site's home tenants
  /// back, and the fabric tier re-warms them.
  RebalanceReport RejoinSite(int site) MEMPHIS_EXCLUDES(mu_);

  /// Current site of `tenant` (registers the placement on first use).
  int SiteOf(const std::string& tenant) MEMPHIS_EXCLUDES(mu_);

  bool alive(int site) MEMPHIS_EXCLUDES(mu_);
  int num_sites() const { return config_.num_sites; }

  /// Site `site`'s accumulated virtual serving time (its lane in the
  /// shared fabric timeline).
  double SiteVirtualSeconds(int site) MEMPHIS_EXCLUDES(mu_);

  /// Total coordinator-clock seconds charged for cross-site exchange.
  double ExchangeSeconds() MEMPHIS_EXCLUDES(mu_);

  FabricStore& store() { return store_; }
  serve::SessionManager& site_manager(int site) MEMPHIS_EXCLUDES(mu_);
  const FabricConfig& config() const { return config_; }

  /// Drains every live site. Idempotent; also run by the destructor.
  void Shutdown() MEMPHIS_EXCLUDES(mu_);

 private:
  serve::ServeConfig SiteServeConfig(int site) const;
  /// Pushes `tenant`'s fabric-tier entries into `target`'s shared store,
  /// charging exchange to the fabric's cross-site clock.
  int RewarmTenantLocked(const std::string& tenant, int target)
      MEMPHIS_REQUIRES(mu_);
  /// Exactly-once terminal accounting of a finished ticket.
  void AccountLocked(const FabricTicketPtr& ticket,
                     const serve::RequestResult& result) MEMPHIS_REQUIRES(mu_);

  const FabricConfig config_;
  FabricStore store_;

  mutable Mutex mu_{LockRank::kFabric, "fabric"};
  FabricRouter router_ MEMPHIS_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<serve::SessionManager>> managers_
      MEMPHIS_GUARDED_BY(mu_);
  std::vector<std::vector<FabricTicketPtr>> inflight_ MEMPHIS_GUARDED_BY(mu_);
  sim::MultiLaneTimeline timeline_ MEMPHIS_GUARDED_BY(mu_);
  double exchange_seconds_ MEMPHIS_GUARDED_BY(mu_) = 0.0;
  bool shut_down_ = false;  // Main-thread flag (Shutdown/dtor only).

  // Registry-owned fabric.* metrics (outlive this fabric).
  obs::Counter* submitted_;
  obs::Counter* completed_;
  obs::Counter* shed_;
  obs::Counter* failed_over_;
  obs::Counter* rebalanced_;
};

}  // namespace memphis::fabric

#endif  // MEMPHIS_FABRIC_FABRIC_H_
