#ifndef MEMPHIS_FABRIC_ROUNDS_H_
#define MEMPHIS_FABRIC_ROUNDS_H_

#include <functional>
#include <string>
#include <vector>

#include "fabric/fabric_store.h"
#include "federated/federated.h"

namespace memphis::fabric {

/// Configuration of one stale-bounded federated run: R rounds of
/// bind-broadcast -> per-site block -> aggregate over `aggregate_var`.
struct StaleRoundOptions {
  int rounds = 1;
  /// Staleness bound K: aggregate r may use a site's output from any round
  /// in [r-K, r], and a site may start round m once the round-(m-K)
  /// broadcast is published. K=0 degenerates to bulk-synchronous rounds and
  /// reproduces FederatedCoordinator::RunRound + AggregateSum bitwise (the
  /// engine replays that path's exact double-op order).
  int staleness_bound = 0;
  std::string aggregate_var;
  /// Optional cross-site reuse tier: sites warm broadcast-derived
  /// intermediates published by other sites before running, and publish
  /// their own after. Null = site-isolated stores (the baseline).
  FabricStore* store = nullptr;
  std::string store_tenant;
};

/// What one stale-bounded run produced, with explicit staleness accounting.
struct StaleRoundReport {
  std::vector<MatrixPtr> aggregates;       // One per round, in order.
  std::vector<double> aggregate_seconds;   // Coordinator clock at each.
  int stale_contributions = 0;  // Site-rounds aggregated from an older round.
  int fresh_transfers = 0;      // Site fetches actually shipped.
  int cross_site_warms = 0;     // Intermediates reused across sites.
  double final_seconds = 0.0;   // Coordinator clock after the last round.
};

/// Asynchronous stale-bounded rounds over a FederatedCoordinator -- the
/// maxParallelize spirit applied across sites: one slow site never stalls
/// the fleet.
///
/// Virtual-time model (all deterministic arithmetic on recorded deltas):
///   P_r          = A_{r-1} + broadcast upload      (round r's model lands)
///   S_i(m)       = max(F_i(m-1), P_{max(m-K,1)})   (stale model admissible)
///   F_i(m)       = S_i(m) + d_i(m)                 (speed-scaled site work)
///   barrier_r    = max(P_r, max_i F_i(max(r-K,1)))
///   contribution = each site's latest round finished by barrier_r (>= r-K)
///   A_r          = barrier_r + per-site transfer charges (fresh ones only)
///
/// Re-used stale contributions are served from the coordinator's cached
/// copy, so a lagging site also stops paying its transfer until it
/// produces something new.
///
/// Every site executes every round exactly once (in round order, with the
/// freshly bound broadcast), so site-local state evolves identically at
/// every K; staleness moves only *which* round a site's aggregate
/// contribution comes from and *when* everything happens on the clock.
/// Aggregates are therefore bitwise-identical across K whenever per-site
/// round outputs are round-invariant (e.g. statistics of the static shard);
/// bench_federated_serve verifies exactly that, and K=0 is bitwise-
/// identical to the synchronous coordinator unconditionally.
///
/// `bind(r)` must put round r's broadcasts in place (fed.BroadcastBind);
/// its upload charge is read off the coordinator clock and scheduled as P_r.
StaleRoundReport RunStaleBoundedRounds(
    federated::FederatedCoordinator& fed,
    const federated::FederatedCoordinator::BlockBuilder& builder,
    const std::function<void(int round)>& bind,
    const StaleRoundOptions& options);

}  // namespace memphis::fabric

#endif  // MEMPHIS_FABRIC_ROUNDS_H_
