#include "fabric/router.h"

#include <algorithm>

#include "common/hash.h"
#include "common/status.h"

namespace memphis::fabric {

FabricRouter::FabricRouter(int num_sites, int virtual_nodes)
    : num_sites_(num_sites), alive_(num_sites, true) {
  MEMPHIS_CHECK(num_sites > 0);
  MEMPHIS_CHECK(virtual_nodes > 0);
  ring_.reserve(static_cast<size_t>(num_sites) * virtual_nodes);
  for (int site = 0; site < num_sites; ++site) {
    for (int replica = 0; replica < virtual_nodes; ++replica) {
      const uint64_t point = HashCombine(HashInt(static_cast<uint64_t>(site) + 1),
                                         HashInt(static_cast<uint64_t>(replica) + 1));
      ring_.emplace_back(point, site);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int FabricRouter::alive_count() const {
  int count = 0;
  for (bool a : alive_) count += a ? 1 : 0;
  return count;
}

int FabricRouter::WalkRing(uint64_t h) const {
  MEMPHIS_CHECK_MSG(alive_count() > 0, "all fabric sites are dead");
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, -1));
  for (size_t step = 0; step < ring_.size(); ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (alive_[it->second]) return it->second;
    ++it;
  }
  return -1;  // Unreachable: alive_count() > 0.
}

int FabricRouter::RingSite(const std::string& tenant) const {
  return WalkRing(Fnv1a(tenant));
}

int FabricRouter::Place(const std::string& tenant) {
  auto it = assignment_.find(tenant);
  if (it != assignment_.end()) return it->second;
  const int site = RingSite(tenant);
  assignment_.emplace(tenant, site);
  return site;
}

std::vector<TenantMove> FabricRouter::KillSite(int site) {
  MEMPHIS_CHECK(site >= 0 && site < num_sites_);
  MEMPHIS_CHECK_MSG(alive_[site], "site already dead");
  alive_[site] = false;
  MEMPHIS_CHECK_MSG(alive_count() > 0, "cannot kill the last live site");
  std::vector<TenantMove> moves;
  for (auto& [tenant, assigned] : assignment_) {
    if (assigned != site) continue;
    const int target = RingSite(tenant);
    moves.push_back({tenant, site, target});
    assigned = target;
  }
  return moves;
}

std::vector<TenantMove> FabricRouter::RejoinSite(int site) {
  MEMPHIS_CHECK(site >= 0 && site < num_sites_);
  MEMPHIS_CHECK_MSG(!alive_[site], "site already live");
  alive_[site] = true;
  std::vector<TenantMove> moves;
  for (auto& [tenant, assigned] : assignment_) {
    const int home = RingSite(tenant);
    if (home == site && assigned != site) {
      moves.push_back({tenant, assigned, site});
      assigned = site;
    }
  }
  return moves;
}

std::vector<std::string> FabricRouter::TenantsAt(int site) const {
  std::vector<std::string> tenants;
  for (const auto& [tenant, assigned] : assignment_) {
    if (assigned == site) tenants.push_back(tenant);
  }
  return tenants;
}

}  // namespace memphis::fabric
