#include "fabric/rounds.h"

#include <algorithm>
#include <map>

#include "common/status.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"

namespace memphis::fabric {

StaleRoundReport RunStaleBoundedRounds(
    federated::FederatedCoordinator& fed,
    const federated::FederatedCoordinator::BlockBuilder& builder,
    const std::function<void(int round)>& bind,
    const StaleRoundOptions& options) {
  const int n = fed.num_sites();
  const int K = std::max(0, options.staleness_bound);
  const int R = options.rounds;
  MEMPHIS_CHECK(R >= 1);
  MEMPHIS_CHECK(!options.aggregate_var.empty());
  fed.EnsureProgram(builder);

  StaleRoundReport report;
  obs::Counter* rounds_metric =
      obs::MetricsRegistry::Global().GetCounter("fabric.rounds");
  obs::Counter* stale_metric =
      obs::MetricsRegistry::Global().GetCounter("fabric.stale_contributions");

  std::vector<double> A(R + 1, fed.ElapsedSeconds());  // A[0] = start clock.
  std::vector<double> P(R + 1, 0.0);
  // F[i][m]: finish time of site i's round m; round 0 = idle at A[0].
  std::vector<std::vector<double>> F(
      n, std::vector<double>(R + 1, fed.ElapsedSeconds()));
  // Per-site window of the last K+1 round outputs of the aggregate var.
  std::vector<std::map<int, MatrixPtr>> outputs(n);
  // Coordinator-side cache of each site's last shipped contribution.
  std::vector<int> shipped_round(n, -1);
  std::vector<MatrixPtr> shipped_value(n);

  for (int r = 1; r <= R; ++r) {
    // The coordinator publishes round r's broadcast right after aggregate
    // r-1. Syncing the coordinator clock to A[r-1] first makes the bind's
    // upload charge land as fl(A[r-1] + t) -- the exact double-op the
    // synchronous path performs, which the K=0 bitwise contract needs.
    fed.AdvanceCoordinatorTo(A[r - 1]);
    bind(r);
    P[r] = fed.ElapsedSeconds();
    const int needed = std::max(r - K, 1);

    for (int i = 0; i < n; ++i) {
      if (options.store != nullptr) {
        // Cross-site reuse: pick up broadcast-derived intermediates some
        // other site already published. The exchange charge lands on the
        // site clock, so it flows into this round's delta d_i(r) and from
        // there onto the coordinator clock through the barrier.
        ExecutionContext& ctx = fed.site(i).ctx();
        report.cross_site_warms += options.store->WarmSite(
            i, options.store_tenant, &ctx.cache(), ctx.mutable_now());
      }
      fed.RunAtSite(i);
      const double delta = fed.SiteDeltaSeconds(i);
      outputs[i][r] = fed.FetchFromSite(i, options.aggregate_var);
      fed.MarkSite(i);
      if (options.store != nullptr) {
        // Only broadcast-derived intermediates cross the fabric: the
        // broadcast-id history is the portable-leaf allowlist, so shard
        // derivations (site-specific values) stay local.
        options.store->PublishCache(i, options.store_tenant,
                                    fed.site(i).ctx().cache(),
                                    &fed.BroadcastHistory());
      }
      F[i][r] = std::max(F[i][r - 1], P[needed]) + delta;
    }

    // The coordinator is busy publishing until P[r], and may aggregate only
    // once every site has finished round r-K.
    double barrier = P[r];
    for (int i = 0; i < n; ++i) barrier = std::max(barrier, F[i][needed]);

    double clock = barrier;
    MatrixPtr aggregate;
    for (int i = 0; i < n; ++i) {
      int contribution = needed;
      for (int m = r; m >= needed; --m) {
        if (F[i][m] <= barrier) {
          contribution = m;
          break;
        }
      }
      if (contribution < r) {
        ++report.stale_contributions;
        stale_metric->Add(1);
      }
      if (contribution != shipped_round[i]) {
        shipped_round[i] = contribution;
        shipped_value[i] = outputs[i][contribution];
        clock += fed.TransferSeconds(shipped_value[i]->SizeInBytes());
        ++report.fresh_transfers;
      }
      aggregate = aggregate == nullptr
                      ? shipped_value[i]
                      : kernels::Binary(kernels::BinaryOp::kAdd, *aggregate,
                                        *shipped_value[i]);
    }
    A[r] = clock;
    report.aggregates.push_back(aggregate);
    report.aggregate_seconds.push_back(clock);
    rounds_metric->Add(1);

    // Prune outputs no future aggregate can reference (< r+1-K).
    for (int i = 0; i < n; ++i) {
      auto it = outputs[i].begin();
      while (it != outputs[i].end() && it->first < std::max(r + 1 - K, 1)) {
        it = outputs[i].erase(it);
      }
    }
  }

  report.final_seconds = A[R];
  fed.AdvanceCoordinatorTo(A[R]);
  return report;
}

}  // namespace memphis::fabric
