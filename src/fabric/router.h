#ifndef MEMPHIS_FABRIC_ROUTER_H_
#define MEMPHIS_FABRIC_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace memphis::fabric {

/// One tenant relocation produced by an explicit rebalance (site kill or
/// rejoin). Rebalancing is never implicit: every move is returned to the
/// caller so shed/failover accounting can follow the tenant.
struct TenantMove {
  std::string tenant;
  int from = -1;
  int to = -1;
};

/// Consistent-hash tenant placement across federated sites.
///
/// Each site owns `virtual_nodes` points on a 64-bit hash ring; a tenant
/// lands on the first *live* site clockwise from its own hash. The classic
/// consistent-hashing property bounds churn: killing a site moves only that
/// site's tenants (to their next live successor), and a rejoin moves back
/// only the tenants whose ring home the rejoined site is.
///
/// Placement is sticky: Place() registers the tenant's assignment and keeps
/// returning it until an explicit KillSite/RejoinSite rebalance. Not
/// internally synchronized -- ServingFabric guards it with its kFabric mutex.
class FabricRouter {
 public:
  explicit FabricRouter(int num_sites, int virtual_nodes = 64);

  int num_sites() const { return num_sites_; }
  bool alive(int site) const { return alive_[site]; }
  int alive_count() const;

  /// Current site of `tenant`, registering the ring placement on first use.
  int Place(const std::string& tenant);

  /// The tenant's ring home among the currently live sites (pure lookup, no
  /// registration).
  int RingSite(const std::string& tenant) const;

  /// Marks `site` dead and re-places its registered tenants on the
  /// surviving ring. Returns the explicit move list.
  std::vector<TenantMove> KillSite(int site);

  /// Marks `site` live again and moves back exactly the registered tenants
  /// whose ring home it is. Returns the explicit move list.
  std::vector<TenantMove> RejoinSite(int site);

  /// Registered tenants currently assigned to `site` (deterministic order).
  std::vector<std::string> TenantsAt(int site) const;

 private:
  /// First live site clockwise of hash point `h`.
  int WalkRing(uint64_t h) const;

  int num_sites_;
  std::vector<bool> alive_;
  /// Sorted ring points: (hash, site).
  std::vector<std::pair<uint64_t, int>> ring_;
  /// Explicit tenant -> site assignments (std::map: deterministic walks).
  std::map<std::string, int> assignment_;
};

}  // namespace memphis::fabric

#endif  // MEMPHIS_FABRIC_ROUTER_H_
