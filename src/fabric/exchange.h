#ifndef MEMPHIS_FABRIC_EXCHANGE_H_
#define MEMPHIS_FABRIC_EXCHANGE_H_

#include <cstddef>

namespace memphis::fabric {

/// Inter-site exchange parameters, Sparkle-informed (PAPERS.md): moving
/// bytes *between* sites crosses a serialized WAN link and pays a per-link
/// latency plus bytes/bandwidth; moving bytes *within* a site rides the
/// shared-memory shuffle path (no latency term, an order of magnitude more
/// bandwidth). Defaults keep the cross/intra ratio of the federation link
/// already modeled by FederatedCoordinator (1 GB/s WAN).
struct ExchangeConfig {
  double intra_site_bandwidth = 8e9;   // Shared-memory shuffle, bytes/s.
  double link_bandwidth = 1e9;         // Serialized WAN link, bytes/s.
  double link_latency_seconds = 1e-4;  // Per-transfer WAN setup cost.
};

/// Charges cross-site data movement on the coordinator clock. Pure math:
/// callers add the returned seconds to whichever virtual clock owns the
/// transfer and bump the fabric.exchange_* metrics themselves.
class ExchangeCostModel {
 public:
  ExchangeCostModel() = default;
  explicit ExchangeCostModel(const ExchangeConfig& config) : config_(config) {}

  /// Seconds to move `bytes` from site `from` to site `to`.
  double TransferSeconds(int from, int to, size_t bytes) const {
    if (from == to) {
      return static_cast<double>(bytes) / config_.intra_site_bandwidth;
    }
    return config_.link_latency_seconds +
           static_cast<double>(bytes) / config_.link_bandwidth;
  }

  const ExchangeConfig& config() const { return config_; }

 private:
  ExchangeConfig config_;
};

}  // namespace memphis::fabric

#endif  // MEMPHIS_FABRIC_EXCHANGE_H_
