#ifndef MEMPHIS_FABRIC_FABRIC_STORE_H_
#define MEMPHIS_FABRIC_FABRIC_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.h"
#include "cache/lineage_cache.h"
#include "cache/shared_store.h"
#include "common/sync.h"
#include "fabric/exchange.h"
#include "lineage/lineage_item.h"
#include "obs/metrics.h"

namespace memphis::fabric {

/// Fabric-level reuse tier *above* the per-site SharedLineageStores: the
/// cross-site home of deterministic broadcast-derived intermediates.
///
/// A site that computes g(w_r) -- an intermediate whose lineage is rooted
/// only in stable identities (broadcast ids, BindMatrixWithId inputs) --
/// publishes it here; every other site warms it into its own session cache
/// instead of recomputing. Because every site binds the same broadcast under
/// the same id and the kernels are deterministic, a warmed value is bitwise
/// identical to what the site would have computed itself, so cross-site
/// reuse never changes results -- only the clock. Session-local keys
/// (lineage reaching an "@" extern leaf) are rejected at publish time, the
/// same bar SharedLineageStore applies across sessions.
///
/// Partitioning mirrors the shared store: one partition per tenant plus the
/// "" (global) partition; a warm for tenant t sees t's partition and the
/// global one only, so cross-tenant isolation holds across sites too.
///
/// Every cross-site warm is charged on the consuming clock through the
/// ExchangeCostModel (WAN link latency + bytes/bandwidth); intra-site
/// entries are skipped entirely (the site already has them).
///
/// Lock rank kFabricStore: held while streaming entries into a session
/// LineageCache (kCacheTier) or a site's SharedLineageStore (kSharedStore),
/// both of which rank above it (sync.h table).
class FabricStore {
 public:
  explicit FabricStore(const ExchangeCostModel& exchange = ExchangeCostModel());

  /// Publishes `entries` (typically a LineageCache host snapshot or a
  /// SharedLineageStore partition export) computed at `site` into `tenant`'s
  /// partition ("" = global). Skips session-local keys, non-host kinds, and
  /// keys already published. When `portable_leaves` is non-null, an entry is
  /// also required to root every one of its extern lineage leaves in that
  /// allowlist -- the federated rounds engine passes its broadcast-id
  /// history here so only broadcast-derived intermediates (identical at
  /// every site) cross the fabric, never site-shard derivations. Returns how
  /// many entries were newly stored.
  int Publish(int site, const std::string& tenant,
              const std::vector<CacheEntryPtr>& entries,
              const std::vector<std::string>* portable_leaves = nullptr)
      MEMPHIS_EXCLUDES(mu_);

  /// Publish(site, tenant, cache.SnapshotHostEntries(), portable_leaves).
  int PublishCache(int site, const std::string& tenant,
                   const LineageCache& cache,
                   const std::vector<std::string>* portable_leaves = nullptr)
      MEMPHIS_EXCLUDES(mu_);

  /// Warms `cache` at `site` with every visible entry another site
  /// published (tenant partition + global), charging each cross-site fetch
  /// to *now. Returns how many entries were newly inserted.
  int WarmSite(int site, const std::string& tenant, LineageCache* cache,
               double* now) MEMPHIS_EXCLUDES(mu_);

  /// Failover/rejoin re-warm: copies `tenant`'s visible entries into
  /// `store` (the target site's SharedLineageStore), charging cross-site
  /// transfers to *now. Returns how many entries were newly stored.
  int RewarmTenant(const std::string& tenant, int target_site,
                   SharedLineageStore* store, double* now)
      MEMPHIS_EXCLUDES(mu_);

  size_t TotalEntries() const MEMPHIS_EXCLUDES(mu_);
  size_t PartitionEntries(const std::string& tenant) const
      MEMPHIS_EXCLUDES(mu_);

  /// Lifetime cross-site warms served (this store, not the process metric).
  int64_t cross_site_warms() const MEMPHIS_EXCLUDES(mu_);

  /// Structural self-check (entry kinds match their value pointers, origin
  /// sites are sane). Empty string when clean.
  std::string CheckInvariants() const MEMPHIS_EXCLUDES(mu_);

  const ExchangeCostModel& exchange() const { return exchange_; }

 private:
  struct Entry {
    LineageItemPtr key;
    CacheKind kind = CacheKind::kHostMatrix;
    MatrixPtr value;      // kHostMatrix.
    double scalar = 0.0;  // kScalar.
    double compute_cost = 0.0;
    size_t bytes = 0;
    int origin_site = -1;
  };
  using PartitionMap = std::unordered_map<LineageItemPtr, Entry,
                                          LineageItemPtrHash, LineageItemPtrEq>;

  /// Charges one `from` -> `to` transfer of `bytes` to *now and bumps the
  /// fabric.exchange_* metrics.
  void ChargeExchange(int from, int to, size_t bytes, double* now)
      MEMPHIS_REQUIRES(mu_);

  const ExchangeCostModel exchange_;
  mutable Mutex mu_{LockRank::kFabricStore, "fabric-store"};
  std::map<std::string, PartitionMap> partitions_ MEMPHIS_GUARDED_BY(mu_);
  int64_t cross_site_warms_ MEMPHIS_GUARDED_BY(mu_) = 0;

  // Registry-owned fabric.* metrics (outlive this store).
  obs::Counter* publishes_;
  obs::Counter* warms_;
  obs::Counter* rewarms_;
  obs::Counter* exchange_bytes_;
  obs::Gauge* exchange_seconds_;
};

}  // namespace memphis::fabric

#endif  // MEMPHIS_FABRIC_FABRIC_STORE_H_
