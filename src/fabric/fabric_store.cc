#include "fabric/fabric_store.h"

#include <unordered_set>
#include <utility>

#include "common/status.h"

namespace memphis::fabric {

namespace {

/// True iff every extern leaf of `key`'s lineage DAG is in `allowed` --
/// i.e. the value derives only from broadcasts, never from site shards.
bool LeavesArePortable(const LineageItemPtr& key,
                       const std::vector<std::string>& allowed) {
  std::vector<const LineageItem*> stack{key.get()};
  std::unordered_set<const LineageItem*> seen;
  while (!stack.empty()) {
    const LineageItem* item = stack.back();
    stack.pop_back();
    if (!seen.insert(item).second) continue;
    if (item->inputs().empty() && item->opcode() == "extern") {
      bool ok = false;
      for (const std::string& id : allowed) {
        if (id == item->data()) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    for (const LineageItemPtr& input : item->inputs()) {
      stack.push_back(input.get());
    }
  }
  return true;
}

}  // namespace

FabricStore::FabricStore(const ExchangeCostModel& exchange)
    : exchange_(exchange) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  publishes_ = registry.GetCounter("fabric.store.publishes");
  warms_ = registry.GetCounter("fabric.store.cross_site_warms");
  rewarms_ = registry.GetCounter("fabric.store.rewarmed_entries");
  exchange_bytes_ = registry.GetCounter("fabric.exchange_bytes");
  exchange_seconds_ = registry.GetGauge("fabric.exchange_seconds");
}

void FabricStore::ChargeExchange(int from, int to, size_t bytes, double* now) {
  const double seconds = exchange_.TransferSeconds(from, to, bytes);
  *now += seconds;
  exchange_bytes_->Add(static_cast<int64_t>(bytes));
  exchange_seconds_->Add(seconds);
}

int FabricStore::Publish(int site, const std::string& tenant,
                         const std::vector<CacheEntryPtr>& entries,
                         const std::vector<std::string>* portable_leaves) {
  int stored = 0;
  MutexLock lock(mu_);
  PartitionMap& partition = partitions_[tenant];
  for (const CacheEntryPtr& entry : entries) {
    if (entry == nullptr || entry->key == nullptr) continue;
    if (entry->kind != CacheKind::kHostMatrix &&
        entry->kind != CacheKind::kScalar) {
      continue;
    }
    if (entry->kind == CacheKind::kHostMatrix && entry->host_value == nullptr) {
      continue;
    }
    // The cross-site bar: only lineage rooted in stable identities
    // (broadcast ids / BindMatrixWithId) is bitwise-portable between sites.
    if (LineageHasSessionLocalLeaf(entry->key)) continue;
    if (portable_leaves != nullptr &&
        !LeavesArePortable(entry->key, *portable_leaves)) {
      continue;
    }
    if (partition.find(entry->key) != partition.end()) continue;
    Entry stored_entry;
    stored_entry.key = entry->key;
    stored_entry.kind = entry->kind;
    stored_entry.value = entry->host_value;
    stored_entry.scalar = entry->scalar_value;
    stored_entry.compute_cost = entry->compute_cost;
    stored_entry.bytes = entry->size_bytes;
    stored_entry.origin_site = site;
    partition.emplace(entry->key, std::move(stored_entry));
    ++stored;
  }
  publishes_->Add(stored);
  return stored;
}

int FabricStore::PublishCache(int site, const std::string& tenant,
                              const LineageCache& cache,
                              const std::vector<std::string>* portable_leaves) {
  return Publish(site, tenant, cache.SnapshotHostEntries(), portable_leaves);
}

int FabricStore::WarmSite(int site, const std::string& tenant,
                          LineageCache* cache, double* now) {
  MEMPHIS_CHECK(cache != nullptr && now != nullptr);
  int warmed = 0;
  MutexLock lock(mu_);
  std::vector<const PartitionMap*> visible;
  if (auto it = partitions_.find(tenant); it != partitions_.end()) {
    visible.push_back(&it->second);
  }
  if (!tenant.empty()) {
    if (auto it = partitions_.find(std::string()); it != partitions_.end()) {
      visible.push_back(&it->second);
    }
  }
  for (const PartitionMap* partition : visible) {
    for (const auto& [key, entry] : *partition) {
      if (entry.origin_site == site) continue;  // The site computed it.
      CacheEntryPtr inserted =
          entry.kind == CacheKind::kHostMatrix
              ? cache->PutHost(key, entry.value, entry.compute_cost,
                               /*delay=*/1, now)
              : cache->PutScalar(key, entry.scalar, entry.compute_cost,
                                 /*delay=*/1, now);
      if (inserted == nullptr) continue;  // Already present at the site.
      ChargeExchange(entry.origin_site, site, entry.bytes, now);
      ++warmed;
    }
  }
  cross_site_warms_ += warmed;
  warms_->Add(warmed);
  return warmed;
}

int FabricStore::RewarmTenant(const std::string& tenant, int target_site,
                              SharedLineageStore* store, double* now) {
  MEMPHIS_CHECK(store != nullptr && now != nullptr);
  int rewarmed = 0;
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, const PartitionMap*>> visible;
  if (auto it = partitions_.find(tenant); it != partitions_.end()) {
    visible.emplace_back(tenant, &it->second);
  }
  if (!tenant.empty()) {
    if (auto it = partitions_.find(std::string()); it != partitions_.end()) {
      visible.emplace_back(std::string(), &it->second);
    }
  }
  for (const auto& [name, partition] : visible) {
    for (const auto& [key, entry] : *partition) {
      auto revived = std::make_shared<CacheEntry>();
      revived->key = key;
      revived->kind = entry.kind;
      revived->status.store(CacheStatus::kCached, std::memory_order_relaxed);
      revived->host_value = entry.value;
      revived->scalar_value = entry.scalar;
      revived->compute_cost = entry.compute_cost;
      revived->size_bytes = entry.bytes;
      if (!store->Put(name, revived)) continue;  // Already there / rejected.
      ChargeExchange(entry.origin_site, target_site, entry.bytes, now);
      ++rewarmed;
    }
  }
  rewarms_->Add(rewarmed);
  return rewarmed;
}

size_t FabricStore::TotalEntries() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [tenant, partition] : partitions_) {
    total += partition.size();
  }
  return total;
}

size_t FabricStore::PartitionEntries(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = partitions_.find(tenant);
  return it == partitions_.end() ? 0 : it->second.size();
}

int64_t FabricStore::cross_site_warms() const {
  MutexLock lock(mu_);
  return cross_site_warms_;
}

std::string FabricStore::CheckInvariants() const {
  MutexLock lock(mu_);
  for (const auto& [tenant, partition] : partitions_) {
    for (const auto& [key, entry] : partition) {
      if (entry.key == nullptr) return "fabric-store entry with null key";
      if (entry.kind == CacheKind::kHostMatrix && entry.value == nullptr) {
        return "host entry without a matrix value";
      }
      if (entry.kind != CacheKind::kHostMatrix &&
          entry.kind != CacheKind::kScalar) {
        return "fabric-store entry of a non-host kind";
      }
      if (entry.origin_site < 0) return "entry without an origin site";
      if (LineageHasSessionLocalLeaf(entry.key)) {
        return "session-local key in the fabric store";
      }
    }
  }
  return std::string();
}

}  // namespace memphis::fabric
