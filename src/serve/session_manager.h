#ifndef MEMPHIS_SERVE_SESSION_MANAGER_H_
#define MEMPHIS_SERVE_SESSION_MANAGER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/shared_store.h"
#include "common/config.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/request.h"

namespace memphis::serve {

/// Serving-layer configuration. `session` is the SystemConfig every worker
/// session is built from (one virtual clock and cache hierarchy per worker).
struct ServeConfig {
  int workers = 4;
  size_t queue_capacity = 64;     // Queue-full submits are rejected.
  /// Shared cross-session cache mode: sessions are reset and reused between
  /// same-tenant requests, and deterministic results are harvested into /
  /// warmed from the SharedLineageStore. When false every request runs in a
  /// freshly built session (the one-session-per-job baseline).
  bool shared_cache = true;
  size_t store_tenant_quota = 8ull << 20;  // Per-tenant store partition.
  /// Durable backing for the shared store (warm restart): segment directory
  /// and live-byte budget. Both must be set (and shared_cache on) for the
  /// store to persist; a restarted manager over the same directory
  /// rehydrates its tenant partitions before serving.
  std::string store_persist_dir;
  size_t store_persist_budget = 0;
  double drain_timeout_ms = 5000;
  /// Periodic per-tenant SLO snapshot exporter (obs::SnapshotExporter): when
  /// `snapshot_path` is set the manager starts the exporter on construction
  /// and stops it (writing one final snapshot) at shutdown, so long-running
  /// serve processes expose tenant latency/hit-rate/shed metrics while live.
  std::string snapshot_path;
  double snapshot_interval_ms = 1000;
  AdmissionConfig admission;
  SystemConfig session;
};

/// The multi-tenant serving front end: a bounded priority queue feeding a
/// pool of reusable MemphisSystem-backed workers, guarded by an admission
/// controller, with an optional shared cross-session lineage store.
///
/// Request lifecycle: Submit -> admission (reject = kRejected + retry-after)
/// -> priority queue (reject when full; expire when the deadline passes
/// before a worker picks it up) -> worker: session reuse-or-rebuild, warm
/// from the store, bind inputs, parse + run, harvest back, Finish.
///
/// Lock ranks (sync.h table): queue (kServeQueue) < admission
/// (kServeAdmission) < session table (kServeSession) < ticket
/// (kServeRequest) < store (kSharedStore) < the session cache's own locks.
/// No serve lock is ever held across request execution.
class SessionManager {
 public:
  explicit SessionManager(const ServeConfig& config);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits, enqueues, and returns the completion ticket. Rejections are
  /// reported through the ticket (already finished as kRejected), never by
  /// blocking the caller. Throws MemphisError for malformed requests
  /// (unknown workload name, no source).
  RequestTicketPtr Submit(const ScriptRequest& request);

  /// Graceful drain: stops intake, rejects everything still queued, lets
  /// in-flight requests finish (bounded by drain_timeout_ms, counted in
  /// "serve.drain_timeouts" on overrun), joins the workers, destroys the
  /// sessions (flushing each metrics registry exactly once), and drains the
  /// global ThreadPool. Idempotent; returns false iff the drain timed out.
  bool Shutdown();

  /// Test hooks: while paused, workers do not pick up queued requests (so
  /// tests can deterministically fill the queue or expire deadlines).
  void PauseForTest();
  void ResumeForTest();

  size_t QueueDepth() const;
  SharedLineageStore* mutable_store() { return store_.get(); }
  const AdmissionController& admission() const { return admission_; }
  const ServeConfig& config() const { return config_; }

 private:
  struct QueuedItem {
    ScriptRequest request;
    RequestTicketPtr ticket;
    size_t reserved = 0;
    double submit_ms = 0;     // Host ms since manager start.
    double deadline_ms = 0;   // Absolute host ms; 0 = none.
    uint64_t seq = 0;         // FIFO tie-break within a priority.
    uint64_t rid = 0;         // Process-unique request id (obs context).
    const char* tenant_label = nullptr;  // Interned; null when obs is off.
  };

  /// One worker slot; `system` is touched only by the owning worker thread.
  struct Slot {
    std::unique_ptr<MemphisSystem> system;
    std::string tenant;
    int64_t runs = 0;
    bool busy = false;
  };

  void WorkerLoop(int slot_index);
  /// Pops the best queued item (highest priority, then lowest seq).
  QueuedItem PopBestLocked() MEMPHIS_REQUIRES(queue_mu_);
  /// Reuses or rebuilds slot `index`'s session for `tenant`.
  MemphisSystem* EnsureSession(int index, const std::string& tenant);
  void RunRequest(int slot_index, QueuedItem item);
  /// Finishes `ticket` with a rejection and releases the admission slot.
  void Reject(const QueuedItem& item, const std::string& reason);
  /// Bumps the tenant-labeled SLO counter "serve.tenant_<tenant>.<what>".
  void BumpTenant(const std::string& tenant, const char* what);
  double NowMs() const;
  double RetryAfterMsLocked() MEMPHIS_REQUIRES(queue_mu_);

  const ServeConfig config_;
  const std::chrono::steady_clock::time_point start_;
  AdmissionController admission_;
  std::unique_ptr<SharedLineageStore> store_;  // Null when !shared_cache.

  mutable Mutex queue_mu_{LockRank::kServeQueue, "serve-queue"};
  CondVar work_cv_;   // Workers: queue non-empty / stopping.
  CondVar drain_cv_;  // Shutdown: in_flight reached zero.
  std::vector<QueuedItem> queue_ MEMPHIS_GUARDED_BY(queue_mu_);
  uint64_t next_seq_ MEMPHIS_GUARDED_BY(queue_mu_) = 0;
  int in_flight_ MEMPHIS_GUARDED_BY(queue_mu_) = 0;
  bool stopping_ MEMPHIS_GUARDED_BY(queue_mu_) = false;
  bool paused_ MEMPHIS_GUARDED_BY(queue_mu_) = false;

  mutable Mutex session_mu_{LockRank::kServeSession, "serve-session"};
  std::vector<Slot> slots_ MEMPHIS_GUARDED_BY(session_mu_);

  std::vector<std::thread> workers_;
  bool shut_down_ = false;  // Main-thread flag (Shutdown/dtor only).

  // Registry-owned serve metrics (outlive this manager).
  obs::Counter* submitted_;
  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Counter* expired_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* session_reuse_;
  obs::Counter* session_rebuild_;
  obs::Counter* drain_timeouts_;
  obs::Gauge* queue_depth_;
  obs::Histogram* latency_ms_;
  obs::Histogram* queue_ms_;
};

}  // namespace memphis::serve

#endif  // MEMPHIS_SERVE_SESSION_MANAGER_H_
