#include "serve/admission.h"

#include <algorithm>

#include "common/status.h"
#include "obs/metrics.h"

namespace memphis::serve {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  MEMPHIS_CHECK_MSG(config_.tenant_max_in_flight >= 1,
                    "tenant_max_in_flight must be >= 1");
}

AdmissionController::Decision AdmissionController::TryAdmit(
    const std::string& tenant, size_t estimate) {
  const size_t reserved =
      estimate > 0 ? estimate : config_.default_reservation;
  MutexLock lock(mu_);
  TenantState& state = tenants_[tenant];
  Decision decision;
  decision.reserved = reserved;
  if (state.in_flight >= config_.tenant_max_in_flight) {
    decision.reason = "tenant concurrency quota (" +
                      std::to_string(config_.tenant_max_in_flight) +
                      " in flight)";
    return decision;
  }
  if (config_.tenant_memory_quota > 0 &&
      state.reserved + reserved > config_.tenant_memory_quota) {
    decision.reason = "tenant memory quota";
    return decision;
  }
  if (config_.memory_budget > 0 &&
      total_reserved_ + reserved > config_.memory_budget) {
    decision.reason = "global memory budget";
    return decision;
  }
  ++state.in_flight;
  state.reserved += reserved;
  total_reserved_ += reserved;
  decision.admitted = true;
  return decision;
}

void AdmissionController::Release(const std::string& tenant, size_t reserved) {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  MEMPHIS_CHECK_MSG(it != tenants_.end() && it->second.in_flight > 0,
                    "Release without a matching TryAdmit: " + tenant);
  --it->second.in_flight;
  it->second.reserved -= std::min(it->second.reserved, reserved);
  total_reserved_ -= std::min(total_reserved_, reserved);
}

size_t AdmissionController::total_reserved() const {
  MutexLock lock(mu_);
  return total_reserved_;
}

int AdmissionController::tenant_in_flight(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.in_flight;
}

}  // namespace memphis::serve
