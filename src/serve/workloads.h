#ifndef MEMPHIS_SERVE_WORKLOADS_H_
#define MEMPHIS_SERVE_WORKLOADS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"

namespace memphis::serve {

/// Named DML workload templates the serve layer ships ("ridge",
/// "gridsearch", "stats"). Templates are parameterized only by the input
/// shapes; the expensive shared prefix (the Gram matrix t(X) %*% X) is what
/// the cross-session cache amortizes across requests of one tenant.
std::vector<std::string> WorkloadNames();

/// DML source of a named template for an X of `cols` columns. Throws
/// MemphisError for unknown names.
std::string WorkloadSource(const std::string& name, size_t cols);

/// Builds a ready-to-submit request: template source, inputs X (rows x cols,
/// `seed`) and y (rows x 1, seed+1) bound with *stable* identities (the
/// BindMatrixWithId convention) so equal (name, shape, seed) requests from
/// the same tenant produce identical lineage across sessions -- the
/// precondition for cross-session reuse. result_var is "loss".
ScriptRequest MakeWorkloadRequest(const std::string& tenant,
                                  const std::string& name, size_t rows,
                                  size_t cols, uint64_t seed);

/// Stable input identity used by MakeWorkloadRequest / the session binder.
std::string StableInputId(const std::string& name, size_t rows, size_t cols,
                          uint64_t seed);

}  // namespace memphis::serve

#endif  // MEMPHIS_SERVE_WORKLOADS_H_
