#ifndef MEMPHIS_SERVE_ADMISSION_H_
#define MEMPHIS_SERVE_ADMISSION_H_

#include <cstddef>
#include <map>
#include <string>

#include "common/sync.h"

namespace memphis::serve {

/// Budgets the admission controller enforces. Zero means "unlimited" for the
/// byte quotas; tenant_max_in_flight must be >= 1.
struct AdmissionConfig {
  size_t memory_budget = 64ull << 20;     // Global reserved-bytes ceiling.
  size_t default_reservation = 1ull << 20;  // Used when the request has no
                                            // memory_estimate_bytes.
  int tenant_max_in_flight = 4;           // Admitted-but-unfinished cap.
  size_t tenant_memory_quota = 0;         // Per-tenant reserved-bytes cap.
};

/// Reserves memory budget and concurrency slots per request before it may
/// enter the queue. Load is shed here -- an over-quota submit is rejected
/// synchronously (kRejected + retry-after) instead of queueing unboundedly.
/// Release() must be called exactly once per admitted request, on every
/// terminal path (completion, failure, deadline expiry, shutdown reject).
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  struct Decision {
    bool admitted = false;
    std::string reason;      // Which quota refused, for the reject message.
    size_t reserved = 0;     // Bytes reserved; pass back to Release().
  };

  /// Tries to reserve a concurrency slot and `estimate` bytes (the default
  /// reservation when 0) for `tenant`.
  Decision TryAdmit(const std::string& tenant, size_t estimate)
      MEMPHIS_EXCLUDES(mu_);

  /// Returns an admitted request's reservation.
  void Release(const std::string& tenant, size_t reserved)
      MEMPHIS_EXCLUDES(mu_);

  size_t total_reserved() const MEMPHIS_EXCLUDES(mu_);
  int tenant_in_flight(const std::string& tenant) const MEMPHIS_EXCLUDES(mu_);

 private:
  struct TenantState {
    int in_flight = 0;
    size_t reserved = 0;
  };

  const AdmissionConfig config_;
  mutable Mutex mu_{LockRank::kServeAdmission, "serve-admission"};
  std::map<std::string, TenantState> tenants_ MEMPHIS_GUARDED_BY(mu_);
  size_t total_reserved_ MEMPHIS_GUARDED_BY(mu_) = 0;
};

}  // namespace memphis::serve

#endif  // MEMPHIS_SERVE_ADMISSION_H_
