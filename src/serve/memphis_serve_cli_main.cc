// Multi-tenant serving driver: submit a stream of mixed named workloads from
// several tenants to a SessionManager and print per-outcome counts and
// latency percentiles.
//
//   ./memphis_serve_cli [--workers=N] [--tenants=N] [--requests=N]
//                       [--shared=0|1] [--trace=FILE] [--metrics=FILE]
//
// With --shared=1 (default) sessions are reused per tenant and deterministic
// intermediates flow through the shared cross-session lineage store, so a
// tenant's second ridge request reuses the first one's Gram matrix even when
// it lands on a different worker session. See README "Serving".

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/flags.h"
#include "serve/session_manager.h"
#include "serve/workloads.h"

using namespace memphis;

namespace {

bool ParseIntFlag(const std::string& arg, const std::string& name,
                  int* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = std::atoi(arg.c_str() + prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 4;
  int tenants = 3;
  int requests = 24;
  int shared = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs::ParseObsFlag(arg)) continue;
    if (ParseIntFlag(arg, "workers", &workers)) continue;
    if (ParseIntFlag(arg, "tenants", &tenants)) continue;
    if (ParseIntFlag(arg, "requests", &requests)) continue;
    if (ParseIntFlag(arg, "shared", &shared)) continue;
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return 2;
  }

  serve::ServeConfig config;
  config.workers = workers;
  config.shared_cache = shared != 0;
  // The driver fires the whole stream at once; give each tenant headroom so
  // the demo exercises the cache path, not the admission path (bench_serve's
  // overload section is where rejections are measured).
  config.admission.tenant_max_in_flight = std::max(4, requests);

  int counts[5] = {};
  {
    serve::SessionManager manager(config);
    const std::vector<std::string> names = serve::WorkloadNames();
    std::vector<serve::RequestTicketPtr> tickets;
    for (int i = 0; i < requests; ++i) {
      const std::string tenant =
          "tenant" + std::to_string(i % std::max(1, tenants));
      const std::string& name = names[i % names.size()];
      tickets.push_back(manager.Submit(serve::MakeWorkloadRequest(
          tenant, name, /*rows=*/512, /*cols=*/24, /*seed=*/7)));
    }
    for (const auto& ticket : tickets) {
      ticket->Wait();
      ++counts[static_cast<int>(ticket->result().outcome)];
    }
    manager.Shutdown();
  }

  std::printf("completed=%d rejected=%d expired=%d failed=%d\n",
              counts[static_cast<int>(serve::RequestOutcome::kCompleted)],
              counts[static_cast<int>(serve::RequestOutcome::kRejected)],
              counts[static_cast<int>(serve::RequestOutcome::kDeadlineExpired)],
              counts[static_cast<int>(serve::RequestOutcome::kFailed)]);
  auto& registry = obs::MetricsRegistry::Global();
  obs::Histogram* latency = registry.GetHistogram("serve.latency_ms", 1e-3);
  std::printf("latency ms: p50=%.2f p95=%.2f p99=%.2f (n=%lld)\n",
              latency->Quantile(0.50), latency->Quantile(0.95),
              latency->Quantile(0.99),
              static_cast<long long>(latency->count()));
  std::printf("store: puts=%lld warmed=%lld evictions=%lld\n",
              static_cast<long long>(
                  registry.GetCounter("serve.store.puts")->value()),
              static_cast<long long>(
                  registry.GetCounter("serve.store.warmed")->value()),
              static_cast<long long>(
                  registry.GetCounter("serve.store.evictions")->value()));

  if (!obs::WriteObsOutputs()) {
    std::fprintf(stderr, "failed to write --trace/--metrics output\n");
    return 1;
  }
  return 0;
}
