#include "serve/session_manager.h"

#include <algorithm>
#include <utility>

#include "common/status.h"
#include "common/thread_pool.h"
#include "compiler/parser.h"
#include "matrix/kernels.h"
#include "obs/exporter.h"
#include "obs/journal.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "serve/workloads.h"

namespace memphis::serve {

namespace {

/// Resolves a request's DML source: explicit source wins, else the named
/// workload template (sized from the "X" input). Throws for neither.
std::string ResolveSource(const ScriptRequest& request) {
  if (!request.source.empty()) return request.source;
  MEMPHIS_CHECK_MSG(!request.workload.empty(),
                    "ScriptRequest needs a source or a workload name");
  size_t cols = 1;
  for (const ScriptRequest::Input& input : request.inputs) {
    if (input.name == "X") cols = input.cols;
  }
  return WorkloadSource(request.workload, cols);
}

/// Builds the thread-local observability context for one request. The
/// tenant label is interned only when tracing or the journal is on -- the
/// disabled path never touches the intern table's lock.
obs::RequestContext MakeRequestContext(uint64_t rid,
                                       const ScriptRequest& request,
                                       const char* tenant_label) {
  obs::RequestContext context;
  context.rid = rid;
  context.tenant = tenant_label;
  context.priority = request.priority;
  context.deadline_ms = request.deadline_ms;
  return context;
}

}  // namespace

SessionManager::SessionManager(const ServeConfig& config)
    : config_([&config] {
        ServeConfig c = config;
        c.workers = std::max(1, c.workers);
        c.queue_capacity = std::max<size_t>(1, c.queue_capacity);
        // Pin the pool size before any worker session exists: session ctors
        // call ThreadPool::Global().Resize, which is unsafe once jobs from
        // concurrent workers are in flight, so every session must agree on
        // the size and make that call a no-op.
        if (c.session.cp_threads <= 0) {
          c.session.cp_threads = ThreadPool::Global().num_threads();
        }
        return c;
      }()),
      start_(std::chrono::steady_clock::now()),
      admission_(config_.admission) {
  if (config_.shared_cache) {
    PersistConfig persist;
    persist.dir = config_.store_persist_dir;
    persist.budget_bytes = config_.store_persist_budget;
    store_ = std::make_unique<SharedLineageStore>(config_.store_tenant_quota,
                                                  persist);
  }
  ThreadPool::Global().Resize(config_.session.cp_threads);

  auto& registry = obs::MetricsRegistry::Global();
  submitted_ = registry.GetCounter("serve.submitted");
  admitted_ = registry.GetCounter("serve.admitted");
  rejected_ = registry.GetCounter("serve.rejected");
  expired_ = registry.GetCounter("serve.expired");
  completed_ = registry.GetCounter("serve.completed");
  failed_ = registry.GetCounter("serve.failed");
  session_reuse_ = registry.GetCounter("serve.session_reuse");
  session_rebuild_ = registry.GetCounter("serve.session_rebuild");
  drain_timeouts_ = registry.GetCounter("serve.drain_timeouts");
  // Materialized at zero so exported snapshots always carry the "no outcome
  // was recorded twice" signal (validate_bench.py gates on it).
  registry.GetCounter("serve.double_records");
  queue_depth_ = registry.GetGauge("serve.queue_depth");
  latency_ms_ = registry.GetHistogram("serve.latency_ms", 1e-3);
  queue_ms_ = registry.GetHistogram("serve.queue_ms", 1e-3);

  if (!config_.snapshot_path.empty()) {
    obs::SnapshotExporter::Global().Start(config_.snapshot_path,
                                          config_.snapshot_interval_ms);
  }

  {
    MutexLock lock(session_mu_);
    slots_.resize(config_.workers);
  }
  workers_.reserve(config_.workers);
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

SessionManager::~SessionManager() { Shutdown(); }

double SessionManager::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double SessionManager::RetryAfterMsLocked() {
  // Backpressure hint: the queue ahead of a retry, costed at the observed
  // mean service time (10ms prior before any completion).
  const double mean_ms =
      latency_ms_->count() > 0 ? latency_ms_->mean() : 10.0;
  return (static_cast<double>(queue_.size()) + 1.0) * mean_ms;
}

RequestTicketPtr SessionManager::Submit(const ScriptRequest& request) {
  // Assign the request id before the first span so submit itself is already
  // attributable; the context scope covers every shed path below.
  const uint64_t rid = obs::NextRequestId();
  const char* tenant_label =
      obs::TraceEnabled() || obs::JournalEnabled()
          ? obs::Intern(request.tenant)
          : nullptr;
  obs::ScopedRequestContext obs_scope(
      MakeRequestContext(rid, request, tenant_label));
  MEMPHIS_TRACE_SPAN1_REQ("serve", "submit", "priority",
                          static_cast<double>(request.priority));
  auto ticket = std::make_shared<RequestTicket>();
  submitted_->Add(1);

  QueuedItem item;
  item.request = request;
  item.request.source = ResolveSource(request);  // Throws on bad workloads.
  item.ticket = ticket;
  item.submit_ms = NowMs();
  item.rid = rid;
  item.tenant_label = tenant_label;
  if (request.deadline_ms > 0) {
    item.deadline_ms = item.submit_ms + request.deadline_ms;
  }

  // Admission first (its lock ranks above the queue lock, so it cannot be
  // taken while queue_mu_ is held -- and need not be: a reservation made
  // for a request that then finds the queue full is simply rolled back).
  AdmissionController::Decision decision =
      admission_.TryAdmit(request.tenant, request.memory_estimate_bytes);
  if (!decision.admitted) {
    RequestResult result;
    result.request_id = rid;
    result.reject_reason = decision.reason;
    {
      MutexLock lock(queue_mu_);
      result.retry_after_ms = RetryAfterMsLocked();
    }
    result.total_ms = NowMs() - item.submit_ms;
    rejected_->Add(1);
    BumpTenant(request.tenant, "shed");
    MEMPHIS_TRACE_INSTANT_REQ("serve", "reject-admission");
    MEMPHIS_JOURNAL(kShed, kNone, kAdmission, 0, 0.0,
                    static_cast<double>(request.memory_estimate_bytes));
    ticket->Finish(RequestOutcome::kRejected, std::move(result));
    return ticket;
  }
  item.reserved = decision.reserved;

  bool full = false;
  bool stopping = false;
  double retry_after_ms = 0;
  {
    MutexLock lock(queue_mu_);
    if (stopping_) {
      stopping = true;
    } else if (queue_.size() >= config_.queue_capacity) {
      full = true;
      retry_after_ms = RetryAfterMsLocked();
    } else {
      item.seq = next_seq_++;
      queue_.push_back(std::move(item));
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }
  if (full || stopping) {
    admission_.Release(request.tenant, decision.reserved);
    RequestResult result;
    result.request_id = rid;
    result.reject_reason = stopping ? "shutting down" : "queue full";
    result.retry_after_ms = retry_after_ms;
    result.total_ms = NowMs() - item.submit_ms;
    rejected_->Add(1);
    BumpTenant(request.tenant, "shed");
    MEMPHIS_TRACE_INSTANT_REQ("serve", "reject-queue");
    if (stopping) {
      MEMPHIS_JOURNAL(kShed, kNone, kShutdown, 0, 0.0, 0.0);
    } else {
      MEMPHIS_JOURNAL(kShed, kNone, kQueueFull, 0, 0.0, 0.0);
    }
    ticket->Finish(RequestOutcome::kRejected, std::move(result));
    return ticket;
  }
  admitted_->Add(1);
  work_cv_.NotifyOne();
  return ticket;
}

SessionManager::QueuedItem SessionManager::PopBestLocked() {
  // Highest priority first, FIFO (lowest seq) within a priority. The queue
  // is small and bounded, so a linear scan beats heap bookkeeping.
  size_t best = 0;
  for (size_t i = 1; i < queue_.size(); ++i) {
    if (queue_[i].request.priority > queue_[best].request.priority ||
        (queue_[i].request.priority == queue_[best].request.priority &&
         queue_[i].seq < queue_[best].seq)) {
      best = i;
    }
  }
  QueuedItem item = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(best));
  queue_depth_->Set(static_cast<double>(queue_.size()));
  return item;
}

void SessionManager::WorkerLoop(int slot_index) {
  for (;;) {
    QueuedItem item;
    {
      MutexLock lock(queue_mu_);
      while (!stopping_ && (queue_.empty() || paused_)) {
        work_cv_.Wait(&queue_mu_);
      }
      if (stopping_) return;
      item = PopBestLocked();
      ++in_flight_;
    }
    RunRequest(slot_index, std::move(item));
    {
      MutexLock lock(queue_mu_);
      --in_flight_;
      if (in_flight_ == 0) drain_cv_.NotifyAll();
    }
  }
}

MemphisSystem* SessionManager::EnsureSession(int index,
                                             const std::string& tenant) {
  Slot* slot;
  {
    MutexLock lock(session_mu_);
    slot = &slots_[index];
    slot->busy = true;
  }
  // `slot->system` is only ever touched by this worker thread; session_mu_
  // guards just the table's bookkeeping fields.
  const bool reusable = config_.shared_cache && slot->system != nullptr &&
                        slot->tenant == tenant;
  if (reusable) {
    // Same tenant on the same worker: reset bindings, keep the (still
    // tenant-private) session cache warm.
    slot->system->ResetForReuse();
    session_reuse_->Add(1);
  } else {
    // Different tenant (cache isolation: a fresh cache, nothing of the
    // previous tenant observable) or per-session mode: rebuild. Destroying
    // first flushes the old session's metrics registry exactly once. Runs
    // under RunRequest's context scope, so the span carries the rid.
    MEMPHIS_TRACE_SPAN_REQ("serve", "session-rebuild");
    slot->system.reset();
    slot->system = std::make_unique<MemphisSystem>(config_.session);
    session_rebuild_->Add(1);
  }
  {
    MutexLock lock(session_mu_);
    slot->tenant = tenant;
    ++slot->runs;
  }
  return slot->system.get();
}

void SessionManager::RunRequest(int slot_index, QueuedItem item) {
  // Re-bind the request's observability context on the worker thread: every
  // span and journal event below -- down through the executor and the cache
  // tiers -- carries this rid.
  obs::ScopedRequestContext obs_scope(
      MakeRequestContext(item.rid, item.request, item.tenant_label));
  MEMPHIS_TRACE_SPAN1_REQ("serve", "request", "slot",
                          static_cast<double>(slot_index));
  const double start_ms = NowMs();
  RequestResult result;
  result.request_id = item.rid;
  result.queue_ms = start_ms - item.submit_ms;
  queue_ms_->Record(std::max(0.0, result.queue_ms));

  if (item.deadline_ms > 0 && start_ms > item.deadline_ms) {
    // Expired while queued: shed without running.
    result.total_ms = NowMs() - item.submit_ms;
    expired_->Add(1);
    BumpTenant(item.request.tenant, "deadline_expired");
    MEMPHIS_TRACE_INSTANT_REQ("serve", "deadline-expired");
    MEMPHIS_JOURNAL(kShed, kNone, kDeadline, 0, 0.0, 0.0);
    // Release before Finish: a finished ticket must imply the admission
    // slot is free again (waiters resubmit immediately).
    admission_.Release(item.request.tenant, item.reserved);
    item.ticket->Finish(RequestOutcome::kDeadlineExpired, std::move(result));
    return;
  }

  MemphisSystem* system = EnsureSession(slot_index, item.request.tenant);
  ExecutionContext& ctx = system->ctx();
  // Carry the context through the ExecutionContext too: executor dispatch
  // spans read ctx.request() (the executor never touches serve headers).
  ctx.set_request(obs::CurrentRequest());

  std::vector<CacheEntryPtr> warmed;
  if (store_ != nullptr) {
    warmed = store_->WarmInto(item.request.tenant, &ctx.cache(),
                              ctx.mutable_now());
    result.warmed_entries = static_cast<int>(warmed.size());
  }
  std::vector<int> warmed_hits_before;
  warmed_hits_before.reserve(warmed.size());
  for (const CacheEntryPtr& entry : warmed) {
    warmed_hits_before.push_back(entry->hits.load());
  }

  for (const ScriptRequest::Input& input : item.request.inputs) {
    ctx.BindMatrixWithId(
        input.name, kernels::RandGaussian(input.rows, input.cols, input.seed),
        StableInputId(input.name, input.rows, input.cols, input.seed));
  }

  const double sim_before = ctx.now();
  const int64_t probes_before = ctx.cache().stats().probes.value();
  const int64_t hits_before = ctx.cache().stats().TotalHits();
  bool ok = true;
  try {
    MEMPHIS_TRACE_SPAN_REQ("serve", "run");
    compiler::Program program = compiler::ParseProgram(item.request.source);
    system->Run(program);
    if (!item.request.result_var.empty() &&
        ctx.HasVar(item.request.result_var)) {
      result.result_value = ctx.FetchScalar(item.request.result_var);
      result.has_result = true;
    }
  } catch (const MemphisError& e) {
    ok = false;
    result.error = e.what();
  }
  result.sim_seconds = ctx.now() - sim_before;
  result.cache_probes = ctx.cache().stats().probes.value() - probes_before;
  result.cache_hits = ctx.cache().stats().TotalHits() - hits_before;
  for (size_t i = 0; i < warmed.size(); ++i) {
    result.cross_session_hits += warmed[i]->hits.load() -
                                 warmed_hits_before[i];
  }

  if (ok && store_ != nullptr) {
    store_->Harvest(item.request.tenant, ctx.cache());
  }
  ctx.set_request(obs::RequestContext{});  // rid 0 between requests.
  {
    MutexLock lock(session_mu_);
    slots_[slot_index].busy = false;
  }

  result.run_ms = NowMs() - start_ms;
  result.total_ms = NowMs() - item.submit_ms;
  latency_ms_->Record(result.total_ms);
  // Per-tenant SLO metrics: latency/queue histograms, completion counters,
  // cumulative probe/hit counters and the derived hit-rate gauge. Registry-
  // owned, so they survive session teardown and manager shutdown.
  {
    auto& registry = obs::MetricsRegistry::Global();
    const std::string prefix = "serve.tenant_" + item.request.tenant;
    registry.GetHistogram(prefix + ".latency_ms", 1e-3)
        ->Record(result.total_ms);
    registry.GetHistogram(prefix + ".queue_ms", 1e-3)
        ->Record(std::max(0.0, result.queue_ms));
    obs::Counter* probes = registry.GetCounter(prefix + ".probes");
    obs::Counter* hits = registry.GetCounter(prefix + ".hits");
    probes->Add(result.cache_probes);
    hits->Add(result.cache_hits);
    const int64_t total_probes = probes->value();
    registry.GetGauge(prefix + ".hit_rate")
        ->Set(total_probes > 0
                  ? static_cast<double>(hits->value()) / total_probes
                  : 0.0);
  }
  // Release before Finish (see the expiry path above).
  admission_.Release(item.request.tenant, item.reserved);
  if (ok) {
    completed_->Add(1);
    BumpTenant(item.request.tenant, "completed");
    item.ticket->Finish(RequestOutcome::kCompleted, std::move(result));
  } else {
    failed_->Add(1);
    BumpTenant(item.request.tenant, "failed");
    MEMPHIS_TRACE_INSTANT_REQ("serve", "request-failed");
    item.ticket->Finish(RequestOutcome::kFailed, std::move(result));
  }
}

void SessionManager::Reject(const QueuedItem& item, const std::string& reason) {
  obs::ScopedRequestContext obs_scope(
      MakeRequestContext(item.rid, item.request, item.tenant_label));
  RequestResult result;
  result.request_id = item.rid;
  result.reject_reason = reason;
  result.total_ms = NowMs() - item.submit_ms;
  rejected_->Add(1);
  BumpTenant(item.request.tenant, "shed");
  MEMPHIS_JOURNAL(kShed, kNone, kShutdown, 0, 0.0, 0.0);
  admission_.Release(item.request.tenant, item.reserved);
  item.ticket->Finish(RequestOutcome::kRejected, std::move(result));
}

void SessionManager::BumpTenant(const std::string& tenant, const char* what) {
  obs::MetricsRegistry::Global()
      .GetCounter("serve.tenant_" + tenant + "." + what)
      ->Add(1);
}

bool SessionManager::Shutdown() {
  if (shut_down_) return true;
  shut_down_ = true;
  MEMPHIS_TRACE_SPAN("serve", "shutdown");  // memphis-lint: allow(span-rid) -- manager-wide drain, not request work

  std::vector<QueuedItem> drained;
  {
    MutexLock lock(queue_mu_);
    stopping_ = true;
    paused_ = false;
    drained = std::move(queue_);
    queue_.clear();
    queue_depth_->Set(0.0);
  }
  work_cv_.NotifyAll();
  for (QueuedItem& item : drained) Reject(item, "shutting down");

  // Bounded wait for in-flight requests (workers saw stopping_ and exit
  // after their current request).
  bool drained_in_time = true;
  {
    MutexLock lock(queue_mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(config_.drain_timeout_ms);
    while (in_flight_ > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        drained_in_time = false;
        drain_timeouts_->Add(1);
        break;
      }
      drain_cv_.WaitFor(
          &queue_mu_,
          std::chrono::duration<double, std::milli>(deadline - now).count());
    }
  }
  // Joining is unconditional: sessions cannot be destroyed under a still-
  // running worker. A drain timeout is a flag, not a leak.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  {
    MutexLock lock(session_mu_);
    // Destroying each session flushes its metrics registry into Global()
    // exactly once (ExecutionContext::FlushMetricsToGlobal is idempotent).
    for (Slot& slot : slots_) slot.system.reset();
    slots_.clear();
  }
  ThreadPool::Global().Drain(config_.drain_timeout_ms);
  // Stop the SLO exporter last so its final snapshot includes the metrics
  // the session destructors just flushed; sessions destroyed after this
  // point land in SnapshotExporter::OnLateFlush (obs.late_flushes).
  if (!config_.snapshot_path.empty()) {
    obs::SnapshotExporter::Global().Stop();
  }
  return drained_in_time;
}

void SessionManager::PauseForTest() {
  MutexLock lock(queue_mu_);
  paused_ = true;
}

void SessionManager::ResumeForTest() {
  {
    MutexLock lock(queue_mu_);
    paused_ = false;
  }
  work_cv_.NotifyAll();
}

size_t SessionManager::QueueDepth() const {
  MutexLock lock(queue_mu_);
  return queue_.size();
}

}  // namespace memphis::serve
