#include "serve/workloads.h"

#include "common/status.h"

namespace memphis::serve {

std::vector<std::string> WorkloadNames() {
  return {"ridge", "gridsearch", "stats"};
}

std::string WorkloadSource(const std::string& name, size_t cols) {
  const std::string d = std::to_string(cols);
  if (name == "ridge") {
    // Ridge regression via the normal equations; the Gram matrix and X^T y
    // are the reusable heavy prefix.
    return "gram = t(X) %*% X;\n"
           "reg = diag(rand(" + d + ", 1, 1, 1, 1, 7));\n"
           "A = gram + reg;\n"
           "b = t(t(y) %*% X);\n"
           "beta = solve(A, b);\n"
           "pred = X %*% beta;\n"
           "resid = pred - y;\n"
           "loss = mean(resid ^ 2);\n";
  }
  if (name == "gridsearch") {
    // Two ridge solves over different regularization draws sharing one Gram
    // matrix -- the within-request analogue of cross-request reuse.
    return "gram = t(X) %*% X;\n"
           "b = t(t(y) %*% X);\n"
           "A1 = gram + diag(rand(" + d + ", 1, 1, 1, 1, 7));\n"
           "w1 = solve(A1, b);\n"
           "A2 = gram + diag(rand(" + d + ", 1, 2, 2, 1, 7));\n"
           "w2 = solve(A2, b);\n"
           "p1 = X %*% w1;\n"
           "r1 = p1 - y;\n"
           "l1 = mean(r1 ^ 2);\n"
           "p2 = X %*% w2;\n"
           "r2 = p2 - y;\n"
           "l2 = mean(r2 ^ 2);\n"
           "loss = l1 + l2;\n";
  }
  if (name == "stats") {
    // Cheap moment statistics; a light workload for mixed-traffic benches.
    return "m = mean(X);\n"
           "s = mean(X ^ 2);\n"
           "loss = s - m ^ 2;\n";
  }
  throw MemphisError("unknown serve workload: " + name);
}

std::string StableInputId(const std::string& name, size_t rows, size_t cols,
                          uint64_t seed) {
  return "serve:" + name + ":" + std::to_string(rows) + "x" +
         std::to_string(cols) + ":" + std::to_string(seed);
}

ScriptRequest MakeWorkloadRequest(const std::string& tenant,
                                  const std::string& name, size_t rows,
                                  size_t cols, uint64_t seed) {
  ScriptRequest request;
  request.tenant = tenant;
  request.workload = name;
  request.source = WorkloadSource(name, cols);
  request.result_var = "loss";
  request.inputs.push_back({"X", rows, cols, seed});
  if (name != "stats") {
    request.inputs.push_back({"y", rows, 1, seed + 1});
  }
  return request;
}

}  // namespace memphis::serve
