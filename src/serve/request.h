#ifndef MEMPHIS_SERVE_REQUEST_H_
#define MEMPHIS_SERVE_REQUEST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace memphis::serve {

/// Terminal states of a served request (plus the initial kPending). Shedding
/// is explicit: an over-quota or queue-full submit returns kRejected with a
/// retry-after hint instead of queueing unboundedly, and a request whose
/// deadline passes while queued completes as kDeadlineExpired without
/// running.
enum class RequestOutcome {
  kPending,
  kCompleted,
  kRejected,
  kDeadlineExpired,
  kFailed,
};

const char* ToString(RequestOutcome outcome);

/// One unit of tenant work: either a named workload template (serve/workloads)
/// or a raw DML source string, plus the inputs to bind before running.
struct ScriptRequest {
  struct Input {
    std::string name;
    size_t rows = 1;
    size_t cols = 1;
    uint64_t seed = 1;
  };

  std::string tenant;
  std::string workload;    // Named template; wins over `source` when set.
  std::string source;      // Raw DML program.
  std::vector<Input> inputs;
  std::string result_var;  // Scalar variable fetched into the result.
  int priority = 0;        // Higher pops first; FIFO within a priority.
  double deadline_ms = 0;  // Host-time budget from submission; 0 = none.
  size_t memory_estimate_bytes = 0;  // Admission reservation; 0 = default.
};

/// Everything the server reports back for one request.
struct RequestResult {
  RequestOutcome outcome = RequestOutcome::kPending;
  uint64_t request_id = 0;     // Process-unique id; keys trace spans (rid)
                               // and journal events for memphis_explain.
  std::string reject_reason;   // kRejected: which quota said no.
  double retry_after_ms = 0;   // kRejected: backpressure hint.
  double queue_ms = 0;         // Host time spent queued.
  double run_ms = 0;           // Host time spent executing.
  double total_ms = 0;         // Submit -> finish, host time.
  double sim_seconds = 0;      // Simulated driver-clock delta of the run.
  bool has_result = false;
  double result_value = 0;     // Fetched `result_var` (when scalar).
  int64_t cache_probes = 0;
  int64_t cache_hits = 0;
  int warmed_entries = 0;        // Entries seeded from the shared store.
  int64_t cross_session_hits = 0;  // Hits landing on warmed entries.
  std::string error;           // kFailed: what the executor threw.
};

/// Completion latch handed back by SessionManager::Submit. Exactly one
/// Finish call records the outcome; the serve-outcome lint rule bans outcome
/// assignments outside request.cc so every terminal path goes through it.
class RequestTicket {
 public:
  RequestTicket() = default;
  RequestTicket(const RequestTicket&) = delete;
  RequestTicket& operator=(const RequestTicket&) = delete;

  /// Records the terminal outcome and wakes waiters. Returns true for the
  /// one call that wins; a second call is a serve-layer bug -- it is
  /// dropped, counted in DoubleRecordCount() and the global
  /// "serve.double_records" metric, and the first outcome stands.
  bool Finish(RequestOutcome outcome, RequestResult result);

  /// Blocks until Finish has been called.
  void Wait() const;
  /// Bounded wait; false iff still pending after `timeout_ms`.
  bool WaitFor(double timeout_ms) const;

  bool done() const;
  /// Copy of the final result; call only after done() (checked).
  RequestResult result() const;

  /// Process-wide count of dropped duplicate Finish calls (test hook).
  static int64_t DoubleRecordCount();

 private:
  mutable Mutex mu_{LockRank::kServeRequest, "serve-request"};
  mutable CondVar cv_;
  bool done_ MEMPHIS_GUARDED_BY(mu_) = false;
  RequestResult result_ MEMPHIS_GUARDED_BY(mu_);
  std::atomic<bool> recorded_{false};
};
using RequestTicketPtr = std::shared_ptr<RequestTicket>;

}  // namespace memphis::serve

#endif  // MEMPHIS_SERVE_REQUEST_H_
