#include "serve/request.h"

#include <chrono>
#include <utility>

#include "common/status.h"
#include "obs/metrics.h"

namespace memphis::serve {

namespace {
std::atomic<int64_t> g_double_records{0};
}  // namespace

const char* ToString(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kPending:
      return "pending";
    case RequestOutcome::kCompleted:
      return "completed";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kDeadlineExpired:
      return "deadline-expired";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "?";
}

bool RequestTicket::Finish(RequestOutcome outcome, RequestResult result) {
  // The atomic exchange decides the winner before any lock is taken, so two
  // racing terminal paths (a worker completing vs. shutdown rejecting)
  // cannot both mutate the result.
  if (recorded_.exchange(true, std::memory_order_acq_rel)) {
    g_double_records.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global().GetCounter("serve.double_records")->Add(1);
    return false;
  }
  result.outcome = outcome;  // The single outcome write (serve-outcome lint).
  {
    MutexLock lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.NotifyAll();
  return true;
}

void RequestTicket::Wait() const {
  MutexLock lock(mu_);
  while (!done_) cv_.Wait(&mu_);
}

bool RequestTicket::WaitFor(double timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(timeout_ms);
  MutexLock lock(mu_);
  while (!done_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    cv_.WaitFor(&mu_, std::chrono::duration<double, std::milli>(deadline - now)
                          .count());
  }
  return true;
}

bool RequestTicket::done() const {
  MutexLock lock(mu_);
  return done_;
}

RequestResult RequestTicket::result() const {
  MutexLock lock(mu_);
  MEMPHIS_CHECK_MSG(done_, "RequestTicket::result() before completion");
  return result_;
}

int64_t RequestTicket::DoubleRecordCount() {
  return g_double_records.load(std::memory_order_relaxed);
}

}  // namespace memphis::serve
