#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "common/status.h"
#include "common/util.h"
#include "obs/trace.h"

namespace memphis {

namespace {
thread_local bool tls_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) { Start(num_threads); }

ThreadPool::~ThreadPool() { Stop(); }

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    auto* created = new ThreadPool(HardwareThreads());
    // Only the shared pool publishes metrics: test-local pools would
    // collide on the names and dangle after destruction.
    auto& registry = obs::MetricsRegistry::Global();
    registry.Register("pool.jobs", &created->stats_.jobs);
    registry.Register("pool.inline_jobs", &created->stats_.inline_jobs);
    registry.Register("pool.chunks", &created->stats_.chunks);
    registry.Register("pool.stolen_chunks", &created->stats_.stolen_chunks);
    registry.RegisterCallback("pool.queue_depth", [created] {
      return static_cast<double>(created->QueueDepth());
    });
    registry.RegisterCallback("pool.threads", [created] {
      return static_cast<double>(created->num_threads());
    });
    return created;
  }();
  return *pool;
}

int ThreadPool::HardwareThreads() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

bool ThreadPool::InWorker() { return tls_in_worker; }

void ThreadPool::Start(int num_threads) {
  num_threads_ = std::max(1, num_threads);
  {
    MutexLock lock(mu_);
    shutdown_ = false;
  }
  // With one thread everything runs inline; no workers needed.
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Stop() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::Resize(int num_threads) {
  num_threads = std::max(1, num_threads);
  if (num_threads == num_threads_) return;
  Stop();
  Start(num_threads);
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && open_jobs_.empty()) work_cv_.Wait(&mu_);
      if (shutdown_) return;
      job = open_jobs_.front();
    }
    RunChunks(job);
  }
}

void ThreadPool::RunChunks(const std::shared_ptr<Job>& job) {
  for (;;) {
    const size_t chunk = job->next_chunk.fetch_add(1);
    if (chunk >= job->num_chunks) {
      if (chunk == job->num_chunks) {
        // This claim exhausted the job: retire it from the open list so
        // workers stop seeing it.
        MutexLock lock(mu_);
        for (auto it = open_jobs_.begin(); it != open_jobs_.end(); ++it) {
          if (it->get() == job.get()) {
            open_jobs_.erase(it);
            open_jobs_count_.store(open_jobs_.size(),
                                   std::memory_order_relaxed);
            // Retirement can precede the final chunk's completion signal;
            // wake Drain() waiters watching for the list to empty.
            if (open_jobs_.empty()) done_cv_.NotifyAll();
            break;
          }
        }
      }
      return;
    }
    const size_t lo = job->begin + chunk * job->grain;
    const size_t hi = std::min(job->end, lo + job->grain);
    ++stats_.chunks;
    if (tls_in_worker) ++stats_.stolen_chunks;
    std::exception_ptr error;
    try {
      MEMPHIS_TRACE_SPAN2("pool", "chunk", "lo", static_cast<double>(lo),
                          "hi", static_cast<double>(hi));
      (*job->fn)(lo, hi);
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      if (error != nullptr && job->error == nullptr) job->error = error;
      if (++job->chunks_done == job->num_chunks) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(1, grain);
  const size_t num_chunks = CeilDiv(end - begin, grain);
  // Inline execution keeps the exact same chunk structure (so per-chunk
  // reductions are bitwise identical), just without worker handoff.
  if (num_chunks == 1 || num_threads_ <= 1 || tls_in_worker) {
    ++stats_.inline_jobs;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t lo = begin + chunk * grain;
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  ++stats_.jobs;
  MEMPHIS_TRACE_SPAN1("pool", "parallel-for",
                      "chunks", static_cast<double>(num_chunks));
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  {
    MutexLock lock(mu_);
    open_jobs_.push_back(job);
    open_jobs_count_.store(open_jobs_.size(), std::memory_order_relaxed);
  }
  work_cv_.NotifyAll();
  RunChunks(job);  // The calling thread contributes too.
  {
    MutexLock lock(mu_);
    while (job->chunks_done != job->num_chunks) done_cv_.Wait(&mu_);
    if (job->error != nullptr) std::rethrow_exception(job->error);
  }
}

bool ThreadPool::Drain(double timeout_ms) {
  // memphis-lint: allow(wall-clock) -- drain deadlines are host time.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  MutexLock lock(mu_);
  while (!open_jobs_.empty()) {
    // memphis-lint: allow(wall-clock)
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const double remaining_ms =
        std::chrono::duration<double, std::milli>(deadline - now).count();
    done_cv_.WaitFor(&mu_, remaining_ms);
  }
  return true;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace memphis
