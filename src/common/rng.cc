#include "common/rng.h"

#include <cmath>

#include "common/hash.h"
#include "common/status.h"

namespace memphis {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // splitmix64 seeding as recommended by the xoshiro authors.
  uint64_t s = seed;
  for (auto& lane : state_) {
    s += 0x9e3779b97f4a7c15ull;
    lane = HashInt(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextInt(uint64_t n) {
  MEMPHIS_CHECK(n > 0);
  return Next() % n;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

}  // namespace memphis
