#include "common/config.h"

namespace memphis {

const char* ToString(ReuseMode mode) {
  switch (mode) {
    case ReuseMode::kNone:
      return "Base";
    case ReuseMode::kTraceOnly:
      return "Trace";
    case ReuseMode::kProbeOnly:
      return "Probe";
    case ReuseMode::kLima:
      return "LIMA";
    case ReuseMode::kHelix:
      return "HELIX";
    case ReuseMode::kMemphis:
      return "MPH";
  }
  return "?";
}

const char* ToString(Backend backend) {
  switch (backend) {
    case Backend::kCP:
      return "CP";
    case Backend::kSpark:
      return "SP";
    case Backend::kGpu:
      return "GPU";
  }
  return "?";
}

const char* ToString(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff:
      return "off";
    case VerifyMode::kSummary:
      return "summary";
    case VerifyMode::kFull:
      return "full";
  }
  return "?";
}

SystemConfig SystemConfig::Scaled() const {
  SystemConfig scaled = *this;
  auto apply = [&](size_t bytes) {
    return static_cast<size_t>(static_cast<double>(bytes) * mem_scale);
  };
  scaled.driver_memory = apply(driver_memory);
  scaled.executor_memory = apply(executor_memory);
  scaled.buffer_pool = apply(buffer_pool);
  scaled.operation_memory = apply(operation_memory);
  scaled.driver_lineage_cache = apply(driver_lineage_cache);
  scaled.gpu_memory = apply(gpu_memory);
  scaled.persist_budget_bytes = apply(persist_budget_bytes);
  scaled.mem_scale = 1.0;  // Already applied.
  return scaled;
}

}  // namespace memphis
