#include "common/sync.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

#if defined(__GLIBC__) || defined(__APPLE__)
#define MEMPHIS_SYNC_HAVE_BACKTRACE 1
#include <execinfo.h>
#else
#define MEMPHIS_SYNC_HAVE_BACKTRACE 0
#endif

namespace memphis {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kFabric:
      return "fabric";
    case LockRank::kFabricStore:
      return "fabric-store";
    case LockRank::kServeQueue:
      return "serve-queue";
    case LockRank::kServeAdmission:
      return "serve-admission";
    case LockRank::kServeSession:
      return "serve-session";
    case LockRank::kServeRequest:
      return "serve-request";
    case LockRank::kSharedStore:
      return "serve-shared-store";
    case LockRank::kPool:
      return "pool";
    case LockRank::kFaultInjection:
      return "fault-injection";
    case LockRank::kCacheTier:
      return "cache-tier";
    case LockRank::kCacheShard:
      return "cache-shard";
    case LockRank::kPersist:
      return "persist";
    case LockRank::kObsExporter:
      return "obs-exporter";
    case LockRank::kMetrics:
      return "metrics";
    case LockRank::kTest:
      return "test";
    case LockRank::kTraceRegistry:
      return "trace-registry";
    case LockRank::kJournalRegistry:
      return "journal-registry";
  }
  return "?";
}

namespace sync_internal {
namespace {

constexpr int kMaxFrames = 24;

/// One acquisition on the per-thread stack: which mutex, its declared rank,
/// and where it was taken (raw return addresses; symbolized only on report).
struct HeldLock {
  const void* mu = nullptr;
  LockRank rank = LockRank::kPool;
  const char* name = nullptr;
  bool shared = false;
  int num_frames = 0;
  void* frames[kMaxFrames];
};

std::vector<HeldLock>& Held() {
  static thread_local std::vector<HeldLock> held;
  return held;
}

std::atomic<int64_t> g_violations{0};
std::atomic<bool> g_abort_on_violation{true};
std::atomic<void (*)(const char*)> g_violation_hook{nullptr};
/// Runtime rank graph: bit `inner` of g_edges[outer] records that some thread
/// acquired rank `inner` while holding rank `outer`.
std::atomic<uint64_t> g_edges[kLockRankCount] = {};

bool Enabled() {
  static const bool enabled = [] {
    if (const char* env = std::getenv("MEMPHIS_SYNC_VALIDATE")) {
      return env[0] != '0';
    }
#if defined(NDEBUG)
    return false;
#else
    return true;
#endif
  }();
  return enabled;
}

int CaptureFrames(void** frames) {
#if MEMPHIS_SYNC_HAVE_BACKTRACE
  return backtrace(frames, kMaxFrames);
#else
  (void)frames;
  return 0;
#endif
}

void PrintFrames(void* const* frames, int num_frames) {
#if MEMPHIS_SYNC_HAVE_BACKTRACE
  if (num_frames > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(frames), num_frames,
                         fileno(stderr));
  } else {
    std::fprintf(stderr, "    (no backtrace captured)\n");
  }
#else
  (void)frames;
  (void)num_frames;
  std::fprintf(stderr, "    (backtrace unavailable on this platform)\n");
#endif
}

/// Prints both acquisition stacks (the conflicting held lock's and the
/// current attempt's), bumps the violation counter, and aborts unless the
/// no-abort test hook is set.
void ReportViolation(const char* what, const HeldLock* conflicting,
                     LockRank rank, const char* name) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  void* frames[kMaxFrames];
  const int num_frames = CaptureFrames(frames);
  std::fprintf(stderr,
               "MEMPHIS SYNC VIOLATION: %s: acquiring '%s' (rank %d/%s)",
               what, name, static_cast<int>(rank), LockRankName(rank));
  if (conflicting != nullptr) {
    std::fprintf(stderr, " while holding '%s' (rank %d/%s)",
                 conflicting->name, static_cast<int>(conflicting->rank),
                 LockRankName(conflicting->rank));
  }
  std::fprintf(stderr,
               "\n  see the rank table in src/common/sync.h\n"
               "  current acquisition:\n");
  PrintFrames(frames, num_frames);
  if (conflicting != nullptr) {
    std::fprintf(stderr, "  conflicting lock acquired at:\n");
    PrintFrames(conflicting->frames, conflicting->num_frames);
  }
  const std::vector<HeldLock>& held = Held();
  std::fprintf(stderr, "  held-lock stack (%zu, outermost first):\n",
               held.size());
  for (const HeldLock& h : held) {
    std::fprintf(stderr, "    '%s' (rank %d/%s%s)\n", h.name,
                 static_cast<int>(h.rank), LockRankName(h.rank),
                 h.shared ? ", shared" : "");
  }
  std::fflush(stderr);
  if (void (*hook)(const char*) =
          g_violation_hook.load(std::memory_order_acquire)) {
    hook(what);
  }
  if (g_abort_on_violation.load(std::memory_order_relaxed)) std::abort();
}

}  // namespace

void OnAcquire(const void* mu, LockRank rank, const char* name, bool shared) {
  if (!Enabled()) return;
  std::vector<HeldLock>& held = Held();
  for (const HeldLock& h : held) {
    g_edges[static_cast<int>(h.rank)].fetch_or(
        uint64_t{1} << static_cast<int>(rank), std::memory_order_relaxed);
    if (h.mu == mu) {
      ReportViolation("recursive acquisition", &h, rank, name);
    } else if (static_cast<int>(rank) < static_cast<int>(h.rank)) {
      ReportViolation("lock rank inversion", &h, rank, name);
    } else if (rank == h.rank) {
      ReportViolation("same-rank acquisition", &h, rank, name);
    }
  }
  HeldLock entry;
  entry.mu = mu;
  entry.rank = rank;
  entry.name = name;
  entry.shared = shared;
  entry.num_frames = CaptureFrames(entry.frames);
  held.push_back(entry);
}

void OnRelease(const void* mu) {
  if (!Enabled()) return;
  std::vector<HeldLock>& held = Held();
  // Unlocks are LIFO in practice, but non-LIFO release is legal: scan back.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mu == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void AssertHeldImpl(const void* mu, const char* name) {
  if (!Enabled()) return;
  for (const HeldLock& h : Held()) {
    if (h.mu == mu) return;
  }
  ReportViolation("AssertHeld on a lock this thread does not hold", nullptr,
                  LockRank::kPool, name);
}

}  // namespace sync_internal

bool SyncValidatorEnabled() { return sync_internal::Enabled(); }

int64_t RankViolationCount() {
  return sync_internal::g_violations.load(std::memory_order_relaxed);
}

bool SyncEdgeObserved(LockRank outer, LockRank inner) {
  const uint64_t bits = sync_internal::g_edges[static_cast<int>(outer)].load(
      std::memory_order_relaxed);
  return (bits & (uint64_t{1} << static_cast<int>(inner))) != 0;
}

void SetSyncValidatorAbortForTest(bool abort_on_violation) {
  sync_internal::g_abort_on_violation.store(abort_on_violation,
                                            std::memory_order_relaxed);
}

void SetRankViolationHook(void (*hook)(const char* what)) {
  sync_internal::g_violation_hook.store(hook, std::memory_order_release);
}

}  // namespace memphis
