#include "common/util.h"

#include <cstdio>

namespace memphis {

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f %s", bytes, kUnits[unit]);
  return buffer;
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds >= 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2fus", seconds * 1e6);
  }
  return buffer;
}

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

}  // namespace memphis
