#ifndef MEMPHIS_COMMON_CONFIG_H_
#define MEMPHIS_COMMON_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace memphis {

/// Reuse policy of the unified runtime. Baseline systems from the paper's
/// evaluation (Section 6.1) are expressed as policy modes of one executor,
/// mirroring the paper's hand-optimized-script methodology.
enum class ReuseMode {
  kNone,        // Base: no lineage tracing, no reuse.
  kTraceOnly,   // Trace: lineage tracing enabled, no cache probing.
  kProbeOnly,   // Probe: full reuse machinery but nothing is ever reusable.
  kLima,        // LIMA: eager fine-grained reuse of *local CPU* objects only.
  kHelix,       // HELIX-style: coarse-grained (function-level) reuse only.
  kMemphis,     // Full MEMPHIS: multi-level, multi-backend reuse.
};

/// Where operators may be placed. Mirrors SystemDS execution types.
enum class Backend : uint8_t { kCP = 0, kSpark = 1, kGpu = 2 };

/// How much static verification compiled plans receive before execution
/// (src/compiler/verifier.h). kFull re-derives every invariant (shape
/// dataflow, def-before-use, placement legality, fused-group closure,
/// lineage purity); kSummary folds the same walk into a cheap summary hash
/// without per-op re-derivation; kOff skips the verifier entirely.
enum class VerifyMode : uint8_t { kOff = 0, kSummary = 1, kFull = 2 };

const char* ToString(ReuseMode mode);
const char* ToString(Backend backend);
const char* ToString(VerifyMode mode);

/// Spark storage levels used by the automatic parameter tuning rewrite.
enum class StorageLevel { kMemoryOnly, kMemoryAndDisk };

/// Global system configuration; defaults follow the memory configuration of
/// the paper's experimental setup (Section 6.1), scaled down by kScale so the
/// simulated cluster is laptop-sized but keeps all ratios.
struct SystemConfig {
  // --- scaling -------------------------------------------------------------
  /// All byte budgets below are divided by 1024 relative to the paper
  /// (e.g. 38 GB driver -> 38 MB) so benchmarks finish quickly. Workload
  /// matrices shrink by the same factor (1/32 per dimension, see
  /// workloads::kDimScale), so placement decisions and memory pressure are
  /// preserved; the cost model charges time analytically, so *ratios* --
  /// who wins and by how much -- are preserved as well.
  double mem_scale = 1.0 / 1024.0;

  // --- memory budgets (bytes, already scaled in Scaled()) -------------------
  size_t driver_memory = 38ull << 30;      // Spark driver heap.
  size_t executor_memory = 230ull << 30;   // per-executor heap.
  size_t buffer_pool = 20ull << 30;        // CP buffer pool.
  size_t operation_memory = 7ull << 30;    // CP op budget; larger -> Spark.
  size_t driver_lineage_cache = 5ull << 30;
  size_t gpu_memory = 48ull << 30;         // device memory (unified manager).

  int num_executors = 8;
  int cores_per_executor = 24;

  /// Real worker threads backing the shared pool that runs CP kernels and
  /// concurrent Spark tasks. 0 (default) derives the size from
  /// cores_per_executor clamped to the host's hardware concurrency. The
  /// thread count never affects results or simulated timings -- see
  /// DESIGN.md, "Threading model".
  int cp_threads = 0;

  // --- Spark memory model ----------------------------------------------------
  double unified_memory_fraction = 0.6;   // execution+storage of heap.
  double storage_fraction = 0.5;          // storage share of unified region.
  double reuse_storage_fraction = 0.8;    // Section 4.1: 80% of storage.

  // --- reuse knobs -----------------------------------------------------------
  ReuseMode reuse_mode = ReuseMode::kMemphis;
  bool multi_level_reuse = true;       // function/block-level reuse.
  bool compaction = true;              // lineage DAG compaction (Fig. 5).
  bool delayed_caching = true;         // Section 5.2.
  int default_delay_factor = 2;        // cache on n-th hit.
  int lazy_materialize_after_misses = 3;  // k for async count() (Section 4.1).

  // --- operator placement ---------------------------------------------------
  bool enable_spark = true;
  bool enable_gpu = true;
  /// Compute-intensive dense operators above this flop count are offloaded
  /// to the GPU (when capable and enabled).
  double gpu_offload_min_flops = 1e6;

  // --- compiler knobs ----------------------------------------------------------
  bool async_operators = true;         // prefetch/broadcast rewrites.
  bool eviction_injection = true;      // evict(pct) between phase shifts.
  bool checkpoint_placement = true;    // persist() rewrites.
  bool max_parallelize = true;         // Algorithm 2 vs plain depth-first.
  bool auto_parameter_tuning = true;   // delay factor / storage level tuning.
  bool operator_fusion = true;         // fuse elementwise/reduce CP chains.
  /// Static plan verification at the end of compilation (and on the fused
  /// fallback path). Full re-derivation in debug/fuzz builds; release
  /// builds drop to the summary-hash walk. NDEBUG is not defined by this
  /// project's Release flags, so the effective default is kFull everywhere;
  /// the release escape hatch is kept for downstream embedders.
#ifdef NDEBUG
  VerifyMode verify_plans = VerifyMode::kSummary;
#else
  VerifyMode verify_plans = VerifyMode::kFull;
#endif

  // --- Spark knobs ---------------------------------------------------------------
  /// Concurrent jobs the cluster can run (FAIR-scheduler lanes); >1 lets
  /// asynchronous prefetch jobs genuinely overlap.
  int spark_job_lanes = 2;

  /// Figure 2(c) baseline: persist + materialize (count) after every Spark
  /// transformation instead of MEMPHIS's lazy, delayed caching.
  bool spark_eager_caching = false;

  // --- durable tier (cache/persist.h) ----------------------------------------
  /// Segment directory of the disk tier below the host tier. Empty (the
  /// default) disables persistence entirely.
  std::string persist_dir;
  /// Live-record byte budget of the disk tier; 0 disables it even when a
  /// directory is set. Scaled by mem_scale like the other byte budgets.
  size_t persist_budget_bytes = 0;
  /// Segment rotation size (physical IO granularity; deliberately not
  /// scaled by mem_scale).
  size_t persist_segment_bytes = 4ull << 20;
  /// Rewrite segments once dead records exceed this fraction of the log.
  double persist_compact_dead_ratio = 0.4;
  /// Host-tier entries cheaper than this are not harvested to disk.
  double persist_min_compute_cost = 0.0;
  /// Background harvest interval (wall ms); 0 = manual HarvestToDiskNow().
  double persist_harvest_interval_ms = 0.0;

  // --- fabric knobs (src/fabric/fabric.h) ------------------------------------
  /// Number of federated serving sites the fabric spreads tenants across.
  /// 1 (the default) means no fabric: a single MemphisSystem executes
  /// programs directly, so these knobs are inert for plain execution and
  /// the fuzz lattice can assert exactly that.
  int num_sites = 1;
  /// Async-round staleness bound K: a site may lag at most K rounds behind
  /// the coordinator and still contribute to aggregation. 0 degenerates to
  /// fully synchronous rounds (bitwise-identical to FederatedCoordinator).
  int staleness_bound = 0;

  // --- GPU knobs ---------------------------------------------------------------
  /// Number of devices, each with its own stream, arena, and cache tier
  /// (Section 5.4; the paper's scale-up node has two A40s).
  int num_gpus = 1;
  bool gpu_recycling = true;           // pointer recycling (Algorithm 1).
  bool gpu_eager_free = false;         // baseline: free after last use.

  /// Returns a copy with all byte budgets multiplied by mem_scale.
  SystemConfig Scaled() const;
};

}  // namespace memphis

#endif  // MEMPHIS_COMMON_CONFIG_H_
