#ifndef MEMPHIS_COMMON_SYNC_H_
#define MEMPHIS_COMMON_SYNC_H_

// Annotated synchronization layer (DESIGN.md §5d). Every lock in the repo is
// one of the wrappers below; raw std::mutex / std::lock_guard /
// std::unique_lock / std::condition_variable are banned outside this header
// (enforced by scripts/memphis_lint.py, which runs as a tier-1 ctest).
//
// The wrappers carry two complementary enforcement mechanisms:
//
//  1. Clang Thread Safety Analysis attributes (compile time, every path):
//     build with -DMEMPHIS_THREAD_SAFETY=ON under clang and GUARDED_BY /
//     REQUIRES violations become -Werror=thread-safety-analysis errors.
//     Under GCC the attribute macros expand to nothing.
//
//  2. A runtime lock-rank validator (debug builds, executed paths): every
//     Mutex is constructed with a LockRank; a per-thread held-lock stack
//     checks each acquisition against the rank table below and aborts --
//     printing both acquisition backtraces, Abseil-deadlock-detector style --
//     on rank inversion, same-rank nesting, or recursive acquisition.
//     Violations are also counted in the "sync.rank_violations" metric.
//
// This only works because locks are never held across calls into unknown
// code: keep critical sections small and leaf-like.

#include <chrono>
#include <condition_variable>  // memphis-lint: allow(raw-sync) -- the one wrapper site.
#include <mutex>               // memphis-lint: allow(raw-sync)
#include <shared_mutex>        // memphis-lint: allow(raw-sync)

// --- Clang Thread Safety Analysis attribute macros --------------------------

#if defined(__clang__) && !defined(SWIG)
#define MEMPHIS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MEMPHIS_THREAD_ANNOTATION__(x)  // no-op on GCC / MSVC
#endif

#define MEMPHIS_CAPABILITY(x) MEMPHIS_THREAD_ANNOTATION__(capability(x))
#define MEMPHIS_SCOPED_CAPABILITY MEMPHIS_THREAD_ANNOTATION__(scoped_lockable)
#define MEMPHIS_GUARDED_BY(x) MEMPHIS_THREAD_ANNOTATION__(guarded_by(x))
#define MEMPHIS_PT_GUARDED_BY(x) MEMPHIS_THREAD_ANNOTATION__(pt_guarded_by(x))
#define MEMPHIS_REQUIRES(...) \
  MEMPHIS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define MEMPHIS_REQUIRES_SHARED(...) \
  MEMPHIS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define MEMPHIS_ACQUIRE(...) \
  MEMPHIS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define MEMPHIS_ACQUIRE_SHARED(...) \
  MEMPHIS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define MEMPHIS_RELEASE(...) \
  MEMPHIS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define MEMPHIS_RELEASE_SHARED(...) \
  MEMPHIS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define MEMPHIS_TRY_ACQUIRE(...) \
  MEMPHIS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define MEMPHIS_EXCLUDES(...) \
  MEMPHIS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define MEMPHIS_ASSERT_CAPABILITY(x) \
  MEMPHIS_THREAD_ANNOTATION__(assert_capability(x))
#define MEMPHIS_ASSERT_SHARED_CAPABILITY(x) \
  MEMPHIS_THREAD_ANNOTATION__(assert_shared_capability(x))
#define MEMPHIS_RETURN_CAPABILITY(x) \
  MEMPHIS_THREAD_ANNOTATION__(lock_returned(x))
#define MEMPHIS_NO_THREAD_SAFETY_ANALYSIS \
  MEMPHIS_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace memphis {

// --- the repo-wide lock-rank table ------------------------------------------
//
// Locks must be acquired in strictly increasing rank order; the runtime
// validator aborts on any acquisition whose rank is <= a rank already held
// by the same thread. This is the single source of truth -- add new locks
// here, between existing rows, with a sentence on why they sit where they do.
//
//  rank | name            | mutex                              | why here
//  -----+-----------------+------------------------------------+-------------
//   0   | kFabric         | ServingFabric::mu_                 | outermost of
//       |                 |                                    | the whole
//       |                 |                                    | stack: fabric
//       |                 |                                    | routing and
//       |                 |                                    | failover may
//       |                 |                                    | submit into a
//       |                 |                                    | site's
//       |                 |                                    | SessionManager
//       |                 |                                    | (serve-queue
//       |                 |                                    | and below)
//       |                 |                                    | while held.
//   1   | kFabricStore    | FabricStore::mu_                   | cross-site
//       |                 |                                    | tier above
//       |                 |                                    | the shared
//       |                 |                                    | store: warming
//       |                 |                                    | a site streams
//       |                 |                                    | entries into
//       |                 |                                    | its session
//       |                 |                                    | cache (shared-
//       |                 |                                    | store / cache-
//       |                 |                                    | tier ranks)
//       |                 |                                    | while held.
//   2   | kServeQueue     | SessionManager::queue_mu_          | outermost of
//       |                 |                                    | the serving
//       |                 |                                    | layer: submit
//       |                 |                                    | and worker
//       |                 |                                    | pops hold it
//       |                 |                                    | only around
//       |                 |                                    | queue ops,
//       |                 |                                    | never across
//       |                 |                                    | execution.
//   3   | kServeAdmission | AdmissionController::mu_           | quota check /
//       |                 |                                    | release; may
//       |                 |                                    | nest inside a
//       |                 |                                    | queue-lock-
//       |                 |                                    | free submit
//       |                 |                                    | path but sits
//       |                 |                                    | above nothing
//       |                 |                                    | of its own.
//   4   | kServeSession   | SessionManager::session_mu_        | worker/session
//       |                 |                                    | table book-
//       |                 |                                    | keeping (who
//       |                 |                                    | serves which
//       |                 |                                    | tenant);
//       |                 |                                    | queue <
//       |                 |                                    | session-table
//       |                 |                                    | by design --
//       |                 |                                    | see DESIGN.md
//       |                 |                                    | section 5e.
//   5   | kServeRequest   | RequestTicket::mu_                 | per-request
//       |                 |                                    | completion
//       |                 |                                    | latch; signal
//       |                 |                                    | and wait both
//       |                 |                                    | happen with
//       |                 |                                    | no other lock
//       |                 |                                    | held.
//   6   | kSharedStore    | SharedLineageStore::mu_            | cross-session
//       |                 |                                    | store; sits
//       |                 |                                    | above the
//       |                 |                                    | cache tier so
//       |                 |                                    | WarmInto can
//       |                 |                                    | stream entries
//       |                 |                                    | into a session
//       |                 |                                    | cache while
//       |                 |                                    | holding it.
//   7   | kCacheTier      | LineageCache::tier_mu_             | outermost:
//       |                 |                                    | tier managers
//       |                 |                                    | erase victim
//       |                 |                                    | keys (shard
//       |                 |                                    | lock) and
//       |                 |                                    | submit async
//       |                 |                                    | Spark jobs
//       |                 |                                    | (pool lock)
//       |                 |                                    | while held.
//   8   | kCacheShard     | LineageCache::Shard::mu            | inside the
//       |                 |                                    | tier lock;
//       |                 |                                    | two shards
//       |                 |                                    | never nest.
//   9   | kPersist        | PersistentTier::mu_                | disk tier:
//       |                 |                                    | probed from
//       |                 |                                    | Reuse under
//       |                 |                                    | the tier lock
//       |                 |                                    | (host miss ->
//       |                 |                                    | disk probe)
//       |                 |                                    | and appended
//       |                 |                                    | to under the
//       |                 |                                    | shared-store
//       |                 |                                    | lock, so it
//       |                 |                                    | sits below
//       |                 |                                    | both; segment
//       |                 |                                    | IO never
//       |                 |                                    | takes another
//       |                 |                                    | lock.
//  10   | kPool           | ThreadPool::mu_                    | leaf-like:
//       |                 |                                    | scoped to
//       |                 |                                    | queue ops,
//       |                 |                                    | never held
//       |                 |                                    | across chunk
//       |                 |                                    | code; nests
//       |                 |                                    | inside the
//       |                 |                                    | tier lock via
//       |                 |                                    | background
//       |                 |                                    | count() jobs.
//  11   | kFaultInjection | fault_injection.cc FaultState::mu  | leaf of the
//       |                 |                                    | kernel path;
//       |                 |                                    | kernels may
//       |                 |                                    | run under
//       |                 |                                    | cache locks.
//  12   | kObsExporter    | SnapshotExporter::mu_              | the periodic
//       |                 |                                    | exporter
//       |                 |                                    | snapshots the
//       |                 |                                    | global
//       |                 |                                    | registry
//       |                 |                                    | (kMetrics)
//       |                 |                                    | while holding
//       |                 |                                    | its own lock,
//       |                 |                                    | so it sits
//       |                 |                                    | just below.
//  13   | kMetrics        | MetricsRegistry::mu_               | snapshot
//       |                 |                                    | callbacks
//       |                 |                                    | must stay
//       |                 |                                    | lock-free
//       |                 |                                    | (atomics
//       |                 |                                    | only).
//  14   | kTest           | test-local mutexes                 | leaf locks in
//       |                 |                                    | tests; may
//       |                 |                                    | wrap traced
//       |                 |                                    | code, so the
//       |                 |                                    | trace rank
//       |                 |                                    | stays above.
//  15   | kTraceRegistry  | obs/trace.cc Registry::mu          | near-innermost:
//       |                 |                                    | a first
//       |                 |                                    | trace event
//       |                 |                                    | on a thread
//       |                 |                                    | registers a
//       |                 |                                    | ring under
//       |                 |                                    | any lock.
//  16   | kJournalRegistry| obs/journal.cc Registry::mu        | innermost: a
//       |                 |                                    | first journal
//       |                 |                                    | event on a
//       |                 |                                    | thread
//       |                 |                                    | registers its
//       |                 |                                    | ring under
//       |                 |                                    | any lock,
//       |                 |                                    | including
//       |                 |                                    | right after
//       |                 |                                    | an Intern()
//       |                 |                                    | (trace rank).
enum class LockRank : int {
  kFabric = 0,
  kFabricStore = 1,
  kServeQueue = 2,
  kServeAdmission = 3,
  kServeSession = 4,
  kServeRequest = 5,
  kSharedStore = 6,
  kCacheTier = 7,
  kCacheShard = 8,
  kPersist = 9,
  kPool = 10,
  kFaultInjection = 11,
  kObsExporter = 12,
  kMetrics = 13,
  kTest = 14,
  kTraceRegistry = 15,
  kJournalRegistry = 16,
};
inline constexpr int kLockRankCount = 17;

/// Stable display name of a rank ("pool", "cache-shard", ...).
const char* LockRankName(LockRank rank);

// --- runtime validator hooks (implemented in sync.cc) -----------------------

namespace sync_internal {
/// Checks `rank` against the calling thread's held-lock stack and pushes the
/// acquisition (with a captured backtrace). Called *before* blocking on the
/// underlying mutex so a would-be deadlock still reports. No-op when the
/// validator is disabled.
void OnAcquire(const void* mu, LockRank rank, const char* name, bool shared);
/// Pops `mu` from the calling thread's held-lock stack.
void OnRelease(const void* mu);
/// Aborts (or counts, in no-abort test mode) unless `mu` is on the calling
/// thread's held-lock stack.
void AssertHeldImpl(const void* mu, const char* name);
}  // namespace sync_internal

/// True when the rank validator is active (debug builds by default; override
/// with the MEMPHIS_SYNC_VALIDATE=0/1 environment variable, read once).
bool SyncValidatorEnabled();

/// Total rank/recursion violations detected so far, process-wide. Published
/// as the "sync.rank_violations" callback metric on the global registry.
int64_t RankViolationCount();

/// True when the validator has observed a thread acquiring `inner` while
/// holding `outer` (the runtime rank graph; used by tests and reports).
bool SyncEdgeObserved(LockRank outer, LockRank inner);

/// Test hook: when `abort_on_violation` is false, violations are counted and
/// reported to stderr but do not abort. Tests must restore the default.
void SetSyncValidatorAbortForTest(bool abort_on_violation);

/// Installs a callback invoked from the violation report path (after the
/// diagnostics print, before a potential abort). The observability layer
/// hangs its flight recorder here so a lock-rank abort dumps the last trace
/// and journal events first. The callback runs on the violating thread and
/// must not acquire ranked locks; pass nullptr to uninstall.
void SetRankViolationHook(void (*hook)(const char* what));

// --- primitives -------------------------------------------------------------

/// Exclusive mutex with a mandatory rank and name. Drop-in for the previous
/// raw std::mutex members; lock it with MutexLock.
class MEMPHIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MEMPHIS_ACQUIRE() {
    sync_internal::OnAcquire(this, rank_, name_, /*shared=*/false);
    mu_.lock();
  }
  void Unlock() MEMPHIS_RELEASE() {
    mu_.unlock();
    sync_internal::OnRelease(this);
  }
  bool TryLock() MEMPHIS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::OnAcquire(this, rank_, name_, /*shared=*/false);
    return true;
  }
  /// Statically tells the analysis -- and dynamically checks, under the
  /// validator -- that the calling thread holds this mutex. Use in callbacks
  /// invoked under a lock the analysis cannot see (e.g. eviction hooks).
  void AssertHeld() const MEMPHIS_ASSERT_CAPABILITY(this) {
    sync_internal::AssertHeldImpl(this, name_);
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

  // BasicLockable interface so CondVar can wait on a Mutex directly. Not for
  // call sites -- use Lock()/Unlock() or MutexLock.
  void lock() MEMPHIS_NO_THREAD_SAFETY_ANALYSIS { Lock(); }
  void unlock() MEMPHIS_NO_THREAD_SAFETY_ANALYSIS { Unlock(); }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Reader/writer mutex. Writers use WriterLock (or Lock/Unlock); readers use
/// ReaderLock. Same rank rules as Mutex; a shared re-acquisition on the same
/// thread is still flagged (it deadlocks std::shared_mutex if a writer is
/// waiting in between).
class MEMPHIS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MEMPHIS_ACQUIRE() {
    sync_internal::OnAcquire(this, rank_, name_, /*shared=*/false);
    mu_.lock();
  }
  void Unlock() MEMPHIS_RELEASE() {
    mu_.unlock();
    sync_internal::OnRelease(this);
  }
  void LockShared() MEMPHIS_ACQUIRE_SHARED() {
    sync_internal::OnAcquire(this, rank_, name_, /*shared=*/true);
    mu_.lock_shared();
  }
  void UnlockShared() MEMPHIS_RELEASE_SHARED() {
    mu_.unlock_shared();
    sync_internal::OnRelease(this);
  }
  void AssertHeld() const MEMPHIS_ASSERT_CAPABILITY(this) {
    sync_internal::AssertHeldImpl(this, name_);
  }
  void AssertReaderHeld() const MEMPHIS_ASSERT_SHARED_CAPABILITY(this) {
    sync_internal::AssertHeldImpl(this, name_);
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

// --- RAII lockers -----------------------------------------------------------

/// Scoped exclusive lock on a Mutex (replaces std::lock_guard).
class MEMPHIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MEMPHIS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MEMPHIS_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock on a SharedMutex.
class MEMPHIS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MEMPHIS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() MEMPHIS_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (read) lock on a SharedMutex.
class MEMPHIS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MEMPHIS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() MEMPHIS_RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// --- condition variable -----------------------------------------------------

/// Condition variable waiting on a memphis::Mutex. No predicate overload on
/// purpose: write the `while (!cond) cv.Wait(&mu);` loop at the call site so
/// the condition reads its GUARDED_BY fields inside the analyzed scope
/// (Clang TSA does not propagate capabilities into predicate lambdas).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks, and re-acquires before returning; may
  /// wake spuriously. The validator pops/pushes the held-lock stack through
  /// the release/re-acquire, so rank checks stay exact across waits.
  void Wait(Mutex* mu) MEMPHIS_REQUIRES(mu) { cv_.wait(*mu); }

  /// Like Wait but gives up after `timeout_ms` (wall-clock; serve-layer
  /// drains and request deadlines are real time, not simulated time).
  /// Returns false iff the wait timed out without a notification. Callers
  /// still re-check their predicate either way.
  bool WaitFor(Mutex* mu, double timeout_ms) MEMPHIS_REQUIRES(mu) {
    // memphis-lint: allow(wall-clock) -- bounded waits are host-time.
    return cv_.wait_for(*mu, std::chrono::duration<double, std::milli>(
                                 timeout_ms)) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace memphis

#endif  // MEMPHIS_COMMON_SYNC_H_
