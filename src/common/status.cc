#include "common/status.h"

#include <sstream>

namespace memphis::internal {

void ThrowCheckFailure(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::ostringstream oss;
  oss << "MEMPHIS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) oss << " (" << message << ")";
  throw MemphisError(oss.str());
}

}  // namespace memphis::internal
