#ifndef MEMPHIS_COMMON_TOLERANCE_H_
#define MEMPHIS_COMMON_TOLERANCE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace memphis {

/// One numeric-comparison policy shared by the metamorphic fuzzer and the
/// unit tests: two doubles agree when they are within an absolute bound OR a
/// relative bound OR a ULP distance (any satisfied criterion passes). The
/// defaults match the historical `1e-9` absolute literals scattered through
/// the tests, plus a relative term so large-magnitude Spark aggregations
/// (partition-order dependent summation) do not need per-test tuning.
struct Tolerance {
  double abs = 1e-9;
  double rel = 1e-9;
  int ulps = 4;

  static Tolerance Abs(double a) { return Tolerance{a, 0.0, 0}; }
  static Tolerance Rel(double r, double a = 0.0) { return Tolerance{a, r, 0}; }
  static Tolerance Ulps(int u) { return Tolerance{0.0, 0.0, u}; }
  /// Exact comparison (bitwise, modulo NaN payloads).
  static Tolerance Exact() { return Tolerance{0.0, 0.0, 0}; }
};

namespace tolerance_internal {

inline int64_t UlpIndex(double x) {
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  // Map to a monotonic integer line so ULP distance is |a - b|.
  return bits < 0 ? std::numeric_limits<int64_t>::min() + (~bits + 1) : bits;
}

}  // namespace tolerance_internal

/// True when `a` and `b` agree under `tol`. Non-finite values compare by
/// identity: NaN matches NaN, +inf matches +inf -- the metamorphic contract
/// is "same representation", not IEEE equality.
inline bool Close(double a, double b, const Tolerance& tol = Tolerance{}) {
  if (a == b) return true;
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (std::isinf(a) || std::isinf(b)) return false;  // a == b covered equals.
  const double diff = std::fabs(a - b);
  if (diff <= tol.abs) return true;
  if (diff <= tol.rel * std::max(std::fabs(a), std::fabs(b))) return true;
  if (tol.ulps > 0) {
    const int64_t ia = tolerance_internal::UlpIndex(a);
    const int64_t ib = tolerance_internal::UlpIndex(b);
    const uint64_t dist = ia > ib ? static_cast<uint64_t>(ia) - ib
                                  : static_cast<uint64_t>(ib) - ia;
    if (dist <= static_cast<uint64_t>(tol.ulps)) return true;
  }
  return false;
}

}  // namespace memphis

#endif  // MEMPHIS_COMMON_TOLERANCE_H_
