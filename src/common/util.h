#ifndef MEMPHIS_COMMON_UTIL_H_
#define MEMPHIS_COMMON_UTIL_H_

#include <cstddef>
#include <string>
#include <vector>

namespace memphis {

/// "1.5 GB", "900 MB", "64 B" -- human-readable byte counts for reports.
std::string FormatBytes(double bytes);

/// "12.34s", "56.7ms" -- human-readable durations (seconds in).
std::string FormatSeconds(double seconds);

/// Joins string pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& separator);

/// ceil(a / b) for positive integers.
inline size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

}  // namespace memphis

#endif  // MEMPHIS_COMMON_UTIL_H_
