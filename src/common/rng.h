#ifndef MEMPHIS_COMMON_RNG_H_
#define MEMPHIS_COMMON_RNG_H_

#include <cstdint>

namespace memphis {

/// Small, fast, deterministic PRNG (xoshiro256**). All randomized pieces of
/// the system (data generators, dropout masks, random search) take an
/// explicit Rng so every experiment is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextInt(uint64_t n);

  /// Standard normal via Box-Muller.
  double NextGaussian();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace memphis

#endif  // MEMPHIS_COMMON_RNG_H_
