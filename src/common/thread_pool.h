#ifndef MEMPHIS_COMMON_THREAD_POOL_H_
#define MEMPHIS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace memphis {

/// Pool activity counters. Only the process-wide Global() pool registers
/// them (under "pool.*"); test-local pools expose them via stats() only.
struct PoolStats {
  obs::Counter jobs;           // ParallelFor calls handed to the workers.
  obs::Counter inline_jobs;    // ParallelFor calls run inline on the caller.
  obs::Counter chunks;         // Chunks executed, all threads.
  obs::Counter stolen_chunks;  // Chunks executed by pool workers.
};

/// Shared worker pool executing chunked parallel-for jobs. One instance
/// (`Global()`) is shared by the CP matrix kernels and the Spark DAG
/// scheduler; its size derives from `SystemConfig::cores_per_executor`
/// (override: `SystemConfig::cp_threads`), clamped to the host's hardware
/// concurrency.
///
/// Determinism contract (see DESIGN.md, "Threading model"): chunk boundaries
/// depend only on (begin, end, grain) -- never on the pool size -- and every
/// chunk either writes a disjoint output range or produces a per-chunk
/// partial that the caller reduces in chunk-index order. Results are
/// therefore bitwise identical for any pool size, including 1.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, initially sized to the hardware concurrency.
  static ThreadPool& Global();

  /// Hardware concurrency of the host (always >= 1).
  static int HardwareThreads();

  /// True when the calling thread is a pool worker running a chunk; nested
  /// ParallelFor calls from such threads run inline to avoid deadlock.
  static bool InWorker();

  int num_threads() const { return num_threads_; }

  /// Joins and respawns the workers at the new size (no-op when unchanged).
  /// Must not be called while jobs are in flight or from inside a chunk.
  void Resize(int num_threads);

  /// Splits [begin, end) into ceil((end-begin)/grain) fixed chunks and runs
  /// fn(chunk_begin, chunk_end) for each, using the workers plus the calling
  /// thread. Blocks until every chunk has finished; the first exception
  /// thrown by a chunk is rethrown here. With a single thread, a single
  /// chunk, or when called from inside a worker, all chunks run inline on
  /// the calling thread (in chunk order) -- the chunk structure itself is
  /// identical either way.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Blocks until no job has unclaimed chunks, or until `timeout_ms` of host
  /// time has elapsed. Returns true when the queue drained, false on timeout.
  /// Used by graceful shutdown paths (SessionManager::Shutdown): in-flight
  /// ParallelFor callers always finish on their own, so an empty open-job
  /// list means no queued work remains. Does not stop the workers.
  bool Drain(double timeout_ms);

  const PoolStats& stats() const { return stats_; }

  /// Jobs with unclaimed chunks right now (sampled by the "pool.queue_depth"
  /// callback gauge). Lock-free: the metrics registry samples callbacks while
  /// holding its own (higher-rank) lock, so this must never take `mu_`.
  size_t QueueDepth() const {
    return open_jobs_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    size_t begin = 0;
    size_t grain = 1;
    size_t num_chunks = 0;
    size_t end = 0;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    std::atomic<size_t> next_chunk{0};
    size_t chunks_done = 0;   // Guarded by the pool mutex.
    std::exception_ptr error;  // First chunk error; guarded by the pool mutex.
  };

  void WorkerLoop();
  /// Claims and runs chunks of `job` until none are left unclaimed.
  void RunChunks(const std::shared_ptr<Job>& job);
  void Start(int num_threads);
  void Stop();

  Mutex mu_{LockRank::kPool, "pool"};
  CondVar work_cv_;  // Workers: jobs available / shutdown.
  CondVar done_cv_;  // Submitters: a job finished a chunk.
  // Jobs with unclaimed chunks, mirrored by an atomic count so QueueDepth()
  // (a metrics callback) never has to take the pool lock.
  std::deque<std::shared_ptr<Job>> open_jobs_ MEMPHIS_GUARDED_BY(mu_);
  std::atomic<size_t> open_jobs_count_{0};
  // Started/joined only from Start/Stop/Resize, which the API forbids calling
  // while jobs are in flight -- so never touched under mu_.
  std::vector<std::thread> workers_;
  int num_threads_ = 1;  // Written only while no workers exist (see Resize).
  bool shutdown_ MEMPHIS_GUARDED_BY(mu_) = false;
  PoolStats stats_;
};

/// ParallelFor on the global pool (the form kernels and the scheduler use).
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace memphis

#endif  // MEMPHIS_COMMON_THREAD_POOL_H_
