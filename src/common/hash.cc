#include "common/hash.h"

namespace memphis {

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

uint64_t HashInt(uint64_t value) {
  value += 0x9e3779b97f4a7c15ull;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  return value ^ (value >> 31);
}

}  // namespace memphis
