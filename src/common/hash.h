#ifndef MEMPHIS_COMMON_HASH_H_
#define MEMPHIS_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace memphis {

/// 64-bit FNV-1a hash of arbitrary bytes. Used for lineage-item hashing; the
/// quality requirement is "few collisions among millions of lineage DAGs".
uint64_t Fnv1a(std::string_view bytes);

/// Mixes a new value into an existing hash (boost::hash_combine flavor with a
/// 64-bit golden-ratio constant).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// Finalizer (splitmix64) for integer keys.
uint64_t HashInt(uint64_t value);

}  // namespace memphis

#endif  // MEMPHIS_COMMON_HASH_H_
