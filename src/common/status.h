#ifndef MEMPHIS_COMMON_STATUS_H_
#define MEMPHIS_COMMON_STATUS_H_

#include <stdexcept>
#include <string>

namespace memphis {

/// Exception type thrown for all recoverable MEMPHIS errors (bad shapes,
/// unknown opcodes, allocation failures surfaced to the caller, ...).
class MemphisError : public std::runtime_error {
 public:
  explicit MemphisError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Thrown by the GPU memory manager when an allocation cannot be served even
/// after recycling, host eviction, and defragmentation.
class GpuOutOfMemoryError : public MemphisError {
 public:
  explicit GpuOutOfMemoryError(const std::string& message)
      : MemphisError(message) {}
};

namespace internal {
[[noreturn]] void ThrowCheckFailure(const char* expr, const char* file,
                                    int line, const std::string& message);
}  // namespace internal

/// Runtime invariant check; throws MemphisError on failure. Unlike assert()
/// this is active in release builds, which is where the benchmarks run.
#define MEMPHIS_CHECK(expr)                                                 \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::memphis::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__, ""); \
    }                                                                       \
  } while (false)

#define MEMPHIS_CHECK_MSG(expr, msg)                                          \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::memphis::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__, msg); \
    }                                                                         \
  } while (false)

}  // namespace memphis

#endif  // MEMPHIS_COMMON_STATUS_H_
