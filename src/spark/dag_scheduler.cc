#include "spark/dag_scheduler.h"

#include <algorithm>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/util.h"
#include "matrix/kernels.h"
#include "obs/trace.h"

namespace memphis::spark {

DagScheduler::DagScheduler(const sim::CostModel* cost_model,
                           BlockManager* block_manager, int total_cores)
    : cost_model_(cost_model),
      block_manager_(block_manager),
      total_cores_(std::max(1, total_cores)) {}

double DagScheduler::WaveTime(int partitions, double per_task) const {
  const auto waves = static_cast<double>(CeilDiv(
      static_cast<size_t>(partitions), static_cast<size_t>(total_cores_)));
  return waves * (per_task + cost_model_->spark_task_overhead);
}

JobRun DagScheduler::RunJob(const RddPtr& root) {
  MEMPHIS_CHECK(root != nullptr);
  JobContext ctx;
  auto partitions = Compute(root, &ctx);
  ctx.MarkStage();  // Close the final (result) stage.

  JobRun run;
  run.partitions = std::move(partitions);
  run.duration = cost_model_->spark_job_overhead +
                 ctx.stages * cost_model_->spark_stage_overhead +
                 ctx.compute_time + ctx.shuffle_time + ctx.io_time;
  run.stages = ctx.stages;
  run.tasks = ctx.tasks;
  run.rdds_computed = ctx.rdds_computed;
  run.rdds_from_cache = ctx.rdds_from_cache;
  run.shuffle_bytes = ctx.shuffle_bytes;
  // Per-stage wall shares include the fixed per-stage overhead.
  for (double& stage_time : ctx.stage_times) {
    stage_time += cost_model_->spark_stage_overhead;
  }
  run.stage_times = std::move(ctx.stage_times);
  return run;
}

std::shared_ptr<const std::vector<Partition>> DagScheduler::Compute(
    const RddPtr& rdd, JobContext* ctx) {
  // Per-job memo: an RDD consumed by several downstream nodes in the same
  // job is computed once.
  if (auto it = ctx->memo.find(rdd->id()); it != ctx->memo.end()) {
    return it->second;
  }

  MEMPHIS_TRACE_SPAN2("spark", obs::TraceEnabled()
                                   ? obs::Intern("rdd:" + rdd->name())
                                   : "rdd",
                      "id", rdd->id(), "parts", rdd->num_partitions());

  // Materialized cached RDD: read from the executors' block managers,
  // charging disk bandwidth for any spilled partitions.
  if (auto cached = block_manager_->Get(rdd->id()); cached != nullptr) {
    const size_t disk_bytes = block_manager_->DiskBytes(rdd->id());
    if (disk_bytes > 0) {
      ctx->io_time += static_cast<double>(disk_bytes) /
                      cost_model_->executor_spill_bandwidth;
    }
    ++ctx->rdds_from_cache;
    ctx->memo[rdd->id()] = cached;
    return cached;
  }

  // Retained shuffle files: the map side of this aggregate was executed by a
  // previous job; its output can be read back without recomputation.
  if (rdd->kind() == Rdd::Kind::kAggregate && rdd->shuffle_files_written()) {
    auto out = rdd->shuffle_output();
    ctx->shuffle_time += cost_model_->ShuffleTime(
        static_cast<double>(rdd->EstimatedBytes()));
    ++ctx->rdds_from_cache;
    ctx->memo[rdd->id()] = out;
    return out;
  }

  // Broadcast dependencies: first job using a broadcast pays the deferred
  // torrent transfer.
  for (const auto& broadcast : rdd->broadcast_deps()) {
    if (!broadcast->transferred() && !broadcast->destroyed()) {
      ctx->io_time += cost_model_->BroadcastTime(
          static_cast<double>(broadcast->SizeBytes()), total_cores_ / 4);
      broadcast->MarkTransferred();
      MEMPHIS_TRACE_INSTANT1("spark", "bcast-fetch", "bytes",
                             static_cast<double>(broadcast->SizeBytes()));
    }
  }

  std::shared_ptr<const std::vector<Partition>> result;
  switch (rdd->kind()) {
    case Rdd::Kind::kSource: {
      // One task per partition, run concurrently on the shared pool. Tasks
      // write disjoint slots of a preallocated vector, so the result is
      // identical to the sequential loop; the simulated wave-time accounting
      // below is untouched by real execution order.
      const auto num_parts = static_cast<size_t>(rdd->num_partitions());
      auto partitions = std::make_shared<std::vector<Partition>>(num_parts);
      const auto& generate = rdd->source_fn();
      ParallelFor(0, num_parts, 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          (*partitions)[i] = generate(static_cast<int>(i));
        }
      });
      ctx->tasks += rdd->num_partitions();
      ctx->compute_time += WaveTime(
          rdd->num_partitions(),
          cost_model_->SparkTaskCompute(
              rdd->per_partition_flops(),
              static_cast<double>(rdd->EstimatedBytes()) /
                  rdd->num_partitions()));
      result = std::move(partitions);
      break;
    }
    case Rdd::Kind::kNarrow: {
      std::vector<std::shared_ptr<const std::vector<Partition>>> parents;
      parents.reserve(rdd->parents().size());
      for (const auto& parent : rdd->parents()) {
        parents.push_back(Compute(parent, ctx));
      }
      const auto num_parts = static_cast<size_t>(rdd->num_partitions());
      auto partitions = std::make_shared<std::vector<Partition>>(num_parts);
      const auto& narrow = rdd->narrow_fn();
      // Pipelined narrow tasks: each one zips its aligned parent tiles and
      // runs the closure, concurrently across partitions.
      ParallelFor(0, num_parts, 1, [&](size_t lo, size_t hi) {
        for (size_t p = lo; p < hi; ++p) {
          std::vector<const Partition*> tiles;
          tiles.reserve(parents.size());
          for (const auto& parent_parts : parents) {
            if (parent_parts->size() == 1) {
              tiles.push_back(&(*parent_parts)[0]);  // Replicated small input.
              continue;
            }
            MEMPHIS_CHECK_MSG(parent_parts->size() == num_parts,
                              "narrow op over misaligned partitions");
            tiles.push_back(&(*parent_parts)[p]);
          }
          Partition out;
          for (const auto& parent_parts : parents) {
            if (parent_parts->size() == num_parts) {
              out = (*parent_parts)[p];
              break;
            }
          }
          out.data = narrow(tiles);
          (*partitions)[p] = std::move(out);
        }
      });
      ctx->tasks += rdd->num_partitions();
      ctx->compute_time +=
          WaveTime(rdd->num_partitions(),
                   cost_model_->SparkTaskCompute(
                       rdd->per_partition_flops(),
                       static_cast<double>(rdd->EstimatedBytes()) /
                           std::max<size_t>(1, num_parts)));
      result = std::move(partitions);
      break;
    }
    case Rdd::Kind::kAggregate: {
      auto parent_parts = Compute(rdd->parents()[0], ctx);
      MEMPHIS_CHECK(!parent_parts->empty());
      // Map side runs concurrently (one task per parent partition); the
      // reduce side combines the partials in partition-index order, exactly
      // like the sequential fold, so the aggregate is bitwise reproducible.
      std::vector<MatrixPtr> partials(parent_parts->size());
      const auto& map = rdd->map_fn();
      ParallelFor(0, parent_parts->size(), 1, [&](size_t lo, size_t hi) {
        for (size_t p = lo; p < hi; ++p) {
          partials[p] = map((*parent_parts)[p]);
        }
      });
      MatrixPtr acc = partials[0];
      for (size_t p = 1; p < partials.size(); ++p) {
        acc = kernels::Binary(rdd->combine_op(), *acc, *partials[p]);
      }
      const int parent_partitions =
          static_cast<int>(parent_parts->size());
      ctx->tasks += parent_partitions + 1;
      ctx->stages += 1;  // Shuffle boundary terminates a stage.
      ctx->compute_time += WaveTime(
          parent_partitions,
          cost_model_->SparkTaskCompute(rdd->per_partition_flops(),
                                        static_cast<double>(
                                            rdd->EstimatedBytes())));
      // Map-side write + reduce-side read of the partial aggregates.
      const double partial_bytes =
          static_cast<double>(rdd->EstimatedBytes()) * parent_partitions;
      ctx->shuffle_time += 2.0 * cost_model_->ShuffleTime(partial_bytes);
      ctx->shuffle_bytes += partial_bytes;
      ctx->MarkStage();  // The map stage ends at this shuffle boundary.
      MEMPHIS_TRACE_INSTANT2("spark", "shuffle", "bytes", partial_bytes,
                             "tasks", static_cast<double>(parent_partitions));

      auto partitions = std::make_shared<std::vector<Partition>>();
      partitions->push_back(Partition{0, acc->rows(), acc});
      // Shuffle files are implicitly retained (Section 2.2).
      rdd->set_shuffle_output(partitions);
      result = std::move(partitions);
      break;
    }
  }
  ++ctx->rdds_computed;

  // Lazily materialize persisted RDDs into the block manager.
  if (rdd->persisted() && !block_manager_->IsMaterialized(rdd->id())) {
    const size_t overflow = block_manager_->Materialize(rdd, result);
    size_t bytes = 0;
    for (const auto& partition : *result) bytes += partition.data->SizeInBytes();
    ctx->io_time +=
        static_cast<double>(bytes) / cost_model_->rdd_cache_write_bw;
    if (overflow > 0) {
      ctx->io_time += static_cast<double>(overflow) /
                      cost_model_->executor_spill_bandwidth;
    }
  }

  ctx->memo[rdd->id()] = result;
  return result;
}

}  // namespace memphis::spark
