#include "spark/block_manager.h"

#include <algorithm>

#include "common/status.h"

namespace memphis::spark {

namespace {
size_t PartitionsBytes(const std::vector<Partition>& partitions) {
  size_t bytes = 0;
  for (const auto& partition : partitions) {
    if (partition.data != nullptr) bytes += partition.data->SizeInBytes();
  }
  return bytes;
}
}  // namespace

BlockManager::BlockManager(size_t storage_capacity_bytes)
    : storage_capacity_(storage_capacity_bytes) {}

size_t BlockManager::Materialize(
    const RddPtr& rdd,
    std::shared_ptr<const std::vector<Partition>> partitions) {
  MEMPHIS_CHECK(partitions != nullptr);
  const size_t bytes = PartitionsBytes(*partitions);
  // Already cached: refresh recency only.
  auto it = cached_.find(rdd->id());
  if (it != cached_.end()) {
    it->second.last_access = ++access_clock_;
    return 0;
  }

  size_t not_in_memory = 0;
  if (storage_used_ + bytes > storage_capacity_) {
    const size_t needed = storage_used_ + bytes - storage_capacity_;
    const size_t freed = EvictLru(needed, rdd->id());
    if (freed < needed) {
      // Still over budget: part of this RDD itself goes to disk / is dropped.
      not_in_memory = std::min(bytes, needed - freed);
    }
  }

  CachedRdd entry;
  entry.partitions = std::move(partitions);
  entry.level = rdd->storage_level();
  entry.memory_bytes = bytes - not_in_memory;
  if (entry.level == StorageLevel::kMemoryAndDisk) {
    entry.disk_bytes = not_in_memory;
    if (not_in_memory > 0) ++num_spilled_;
  } else {
    entry.dropped_bytes = not_in_memory;
    if (not_in_memory > 0) ++num_dropped_;
  }
  entry.last_access = ++access_clock_;
  storage_used_ += entry.memory_bytes;
  cached_[rdd->id()] = std::move(entry);
  return not_in_memory;
}

bool BlockManager::IsMaterialized(int rdd_id) const {
  return cached_.count(rdd_id) != 0;
}

double BlockManager::MemoryResidentFraction(int rdd_id) const {
  auto it = cached_.find(rdd_id);
  if (it == cached_.end()) return 0.0;
  const auto& entry = it->second;
  const size_t total =
      entry.memory_bytes + entry.disk_bytes + entry.dropped_bytes;
  return total == 0 ? 1.0
                    : static_cast<double>(entry.memory_bytes) /
                          static_cast<double>(total);
}

std::shared_ptr<const std::vector<Partition>> BlockManager::Get(int rdd_id) {
  auto it = cached_.find(rdd_id);
  if (it == cached_.end()) return nullptr;
  auto& entry = it->second;
  if (entry.dropped_bytes > 0) return nullptr;  // Must recompute.
  entry.last_access = ++access_clock_;
  return entry.partitions;
}

size_t BlockManager::DiskBytes(int rdd_id) const {
  auto it = cached_.find(rdd_id);
  return it == cached_.end() ? 0 : it->second.disk_bytes;
}

size_t BlockManager::Evict(int rdd_id) {
  auto it = cached_.find(rdd_id);
  if (it == cached_.end()) return 0;
  const size_t freed = it->second.memory_bytes;
  storage_used_ -= freed;
  cached_.erase(it);
  return freed;
}

size_t BlockManager::MemoryBytes(int rdd_id) const {
  auto it = cached_.find(rdd_id);
  return it == cached_.end() ? 0 : it->second.memory_bytes;
}

size_t BlockManager::EvictLru(size_t needed, int protect_rdd_id) {
  // Sort victims by recency (oldest first).
  std::vector<std::pair<uint64_t, int>> victims;
  victims.reserve(cached_.size());
  for (const auto& [id, entry] : cached_) {
    if (id != protect_rdd_id && entry.memory_bytes > 0) {
      victims.emplace_back(entry.last_access, id);
    }
  }
  std::sort(victims.begin(), victims.end());

  size_t freed = 0;
  for (const auto& [access, id] : victims) {
    if (freed >= needed) break;
    auto& entry = cached_[id];
    const size_t take = std::min(entry.memory_bytes, needed - freed);
    entry.memory_bytes -= take;
    if (entry.level == StorageLevel::kMemoryAndDisk) {
      entry.disk_bytes += take;
      ++num_spilled_;
    } else {
      entry.dropped_bytes += take;
      ++num_dropped_;
    }
    storage_used_ -= take;
    freed += take;
  }
  return freed;
}

}  // namespace memphis::spark
