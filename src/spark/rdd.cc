#include "spark/rdd.h"

#include <atomic>

#include "common/status.h"

namespace memphis::spark {

namespace {
std::atomic<int> g_next_rdd_id{1};
}  // namespace

Rdd::Rdd(std::string name, Kind kind, std::vector<RddPtr> parents,
         int num_partitions, size_t rows, size_t cols)
    : id_(g_next_rdd_id.fetch_add(1)),
      name_(std::move(name)),
      kind_(kind),
      parents_(std::move(parents)),
      num_partitions_(num_partitions),
      rows_(rows),
      cols_(cols) {}

RddPtr Rdd::Source(std::string name, int num_partitions, size_t rows,
                   size_t cols, SourceFn generate) {
  MEMPHIS_CHECK(num_partitions > 0);
  auto rdd = RddPtr(new Rdd(std::move(name), Kind::kSource, {}, num_partitions,
                            rows, cols));
  rdd->source_fn_ = std::move(generate);
  return rdd;
}

RddPtr Rdd::Narrow(std::string name, std::vector<RddPtr> parents, size_t rows,
                   size_t cols, NarrowFn fn) {
  MEMPHIS_CHECK_MSG(!parents.empty(), "narrow RDD requires parents");
  // Parents must share partitioning; single-partition parents (small
  // aggregate outputs) are replicated to every task, broadcast-style.
  int parts = 1;
  for (const auto& parent : parents) {
    if (parent->num_partitions() == 1) continue;
    MEMPHIS_CHECK_MSG(parts == 1 || parent->num_partitions() == parts,
                      "narrow RDD: misaligned parent partitioning");
    parts = parent->num_partitions();
  }
  auto rdd = RddPtr(new Rdd(std::move(name), Kind::kNarrow, std::move(parents),
                            parts, rows, cols));
  rdd->narrow_fn_ = std::move(fn);
  return rdd;
}

RddPtr Rdd::Aggregate(std::string name, RddPtr parent, size_t rows,
                      size_t cols, MapFn map_fn, kernels::BinaryOp combine) {
  std::vector<RddPtr> parents{std::move(parent)};
  auto rdd = RddPtr(new Rdd(std::move(name), Kind::kAggregate,
                            std::move(parents), /*num_partitions=*/1, rows,
                            cols));
  rdd->map_fn_ = std::move(map_fn);
  rdd->combine_op_ = combine;
  return rdd;
}

void Rdd::AddBroadcastDep(BroadcastPtr broadcast) {
  broadcast_deps_.push_back(std::move(broadcast));
}

Broadcast::Broadcast(int id, MatrixPtr value)
    : id_(id), value_(std::move(value)) {
  MEMPHIS_CHECK(value_ != nullptr);
  size_bytes_ = value_->SizeInBytes();
}

}  // namespace memphis::spark
