#ifndef MEMPHIS_SPARK_RDD_H_
#define MEMPHIS_SPARK_RDD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "matrix/kernels.h"
#include "matrix/matrix_block.h"

namespace memphis::spark {

class Rdd;
using RddPtr = std::shared_ptr<Rdd>;

class Broadcast;
using BroadcastPtr = std::shared_ptr<Broadcast>;

/// One partition of a row-partitioned distributed matrix.
struct Partition {
  size_t row_lo = 0;   // global row range [row_lo, row_hi)
  size_t row_hi = 0;
  MatrixPtr data;
};

/// Lazily evaluated distributed dataset of matrix tiles -- the analogue of a
/// Spark RDD of keyed matrix blocks. Nothing is computed at construction;
/// the DagScheduler materializes partitions when an action runs.
///
/// Three node kinds cover the workloads:
///  * kSource     -- generates/loads partitions (from a driver matrix or a
///                   seeded generator); no parents.
///  * kNarrow     -- per-partition function over aligned parent partitions
///                   (map / zip); pipelined within a stage.
///  * kAggregate  -- wide: maps every parent partition and add-reduces into a
///                   single partition; terminates a stage (shuffle boundary).
class Rdd {
 public:
  enum class Kind { kSource, kNarrow, kAggregate };

  /// kSource: `generate(i)` produces partition i.
  using SourceFn = std::function<Partition(int partition_index)>;
  /// kNarrow: one aligned partition from each parent -> output tile data.
  /// Partition row ranges let closures slice broadcast operands.
  using NarrowFn =
      std::function<MatrixPtr(const std::vector<const Partition*>&)>;
  /// kAggregate map side: one parent partition -> partial aggregate.
  using MapFn = std::function<MatrixPtr(const Partition&)>;

  static RddPtr Source(std::string name, int num_partitions, size_t rows,
                       size_t cols, SourceFn generate);
  static RddPtr Narrow(std::string name, std::vector<RddPtr> parents,
                       size_t rows, size_t cols, NarrowFn fn);
  /// `combine`: elementwise reduction applied across partial aggregates
  /// (kAdd for sums/tsmm, kMin for stacked min/max statistics).
  static RddPtr Aggregate(std::string name, RddPtr parent, size_t rows,
                          size_t cols, MapFn map_fn,
                          kernels::BinaryOp combine = kernels::BinaryOp::kAdd);

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  const std::vector<RddPtr>& parents() const { return parents_; }
  int num_partitions() const { return num_partitions_; }

  /// Worst-case estimated output size; the s(o) term of eviction Eq. (1).
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t EstimatedBytes() const { return rows_ * cols_ * sizeof(double); }

  /// Per-partition compute cost estimate in flops (set by the builder).
  double per_partition_flops() const { return per_partition_flops_; }
  void set_per_partition_flops(double flops) { per_partition_flops_ = flops; }

  /// Broadcast variables this RDD's closure captures; tracked so the lazy
  /// garbage collector knows which driver-side chunks are still referenced.
  const std::vector<BroadcastPtr>& broadcast_deps() const {
    return broadcast_deps_;
  }
  void AddBroadcastDep(BroadcastPtr broadcast);

  // --- caching state (driven by SparkContext / BlockManager) ---------------
  bool persisted() const { return persisted_; }
  StorageLevel storage_level() const { return storage_level_; }
  void MarkPersisted(StorageLevel level) {
    persisted_ = true;
    storage_level_ = level;
  }
  void Unpersist() { persisted_ = false; }

  /// Shuffle files of an aggregate node are implicitly retained by Spark;
  /// a job that re-touches this node skips the map side (Section 2.2).
  bool shuffle_files_written() const { return shuffle_output_ != nullptr; }
  const std::shared_ptr<const std::vector<Partition>>& shuffle_output() const {
    return shuffle_output_;
  }
  void set_shuffle_output(std::shared_ptr<const std::vector<Partition>> out) {
    shuffle_output_ = std::move(out);
  }
  void DropShuffleFiles() { shuffle_output_.reset(); }

  kernels::BinaryOp combine_op() const { return combine_op_; }

  // Node functions (used by the scheduler).
  const SourceFn& source_fn() const { return source_fn_; }
  const NarrowFn& narrow_fn() const { return narrow_fn_; }
  const MapFn& map_fn() const { return map_fn_; }

 private:
  Rdd(std::string name, Kind kind, std::vector<RddPtr> parents,
      int num_partitions, size_t rows, size_t cols);

  int id_;
  std::string name_;
  Kind kind_;
  std::vector<RddPtr> parents_;
  int num_partitions_;
  size_t rows_;
  size_t cols_;
  double per_partition_flops_ = 0.0;
  std::vector<BroadcastPtr> broadcast_deps_;

  bool persisted_ = false;
  StorageLevel storage_level_ = StorageLevel::kMemoryOnly;
  std::shared_ptr<const std::vector<Partition>> shuffle_output_;

  kernels::BinaryOp combine_op_ = kernels::BinaryOp::kAdd;
  SourceFn source_fn_;
  NarrowFn narrow_fn_;
  MapFn map_fn_;
};

/// Driver-registered broadcast variable (TorrentBroadcast analogue). The
/// serialized chunks occupy driver memory from creation until `Destroy`;
/// transfer to executors is deferred to the first job that uses it.
class Broadcast {
 public:
  Broadcast(int id, MatrixPtr value);

  int id() const { return id_; }
  const MatrixPtr& value() const { return value_; }
  size_t SizeBytes() const { return size_bytes_; }

  bool transferred() const { return transferred_; }
  void MarkTransferred() { transferred_ = true; }

  bool destroyed() const { return destroyed_; }
  void Destroy() {
    destroyed_ = true;
    value_.reset();
  }

 private:
  int id_;
  MatrixPtr value_;
  size_t size_bytes_ = 0;
  bool transferred_ = false;
  bool destroyed_ = false;
};

}  // namespace memphis::spark

#endif  // MEMPHIS_SPARK_RDD_H_
