#include "spark/spark_context.h"

#include <algorithm>

#include "common/status.h"
#include "common/util.h"
#include "matrix/kernels.h"
#include "obs/trace.h"

namespace memphis::spark {

void SparkStats::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->Register("spark.jobs", &jobs);
  registry->Register("spark.tasks", &tasks);
  registry->Register("spark.stages", &stages);
  registry->Register("spark.collects", &collects);
  registry->Register("spark.counts", &counts);
  registry->Register("spark.shuffle_bytes", &shuffle_bytes);
  registry->Register("spark.job_duration_s", &job_duration_s);
  registry->Register("spark.stage_time_s", &stage_time_s);
}

SparkContext::SparkContext(const SystemConfig& config,
                           const sim::CostModel* cost_model)
    : cost_model_(cost_model),
      total_cores_(config.num_executors * config.cores_per_executor),
      block_manager_(static_cast<size_t>(
          static_cast<double>(config.executor_memory) * config.num_executors *
          config.unified_memory_fraction * config.storage_fraction)),
      scheduler_(cost_model, &block_manager_, total_cores_),
      cluster_timeline_("spark-cluster", config.spark_job_lanes) {}

size_t SparkContext::StorageCapacity() const {
  return block_manager_.storage_capacity();
}

RddPtr SparkContext::Parallelize(const std::string& name, MatrixPtr matrix,
                                 int num_partitions) {
  MEMPHIS_CHECK(matrix != nullptr);
  MEMPHIS_CHECK(num_partitions > 0);
  const size_t rows = matrix->rows();
  const size_t cols = matrix->cols();
  const size_t rows_per_part =
      std::max<size_t>(1, CeilDiv(rows, static_cast<size_t>(num_partitions)));
  const int parts = static_cast<int>(CeilDiv(rows, rows_per_part));
  return Rdd::Source(
      name, parts, rows, cols,
      [matrix, rows_per_part, rows](int index) {
        const size_t lo = static_cast<size_t>(index) * rows_per_part;
        const size_t hi = std::min(rows, lo + rows_per_part);
        return Partition{
            lo, hi, kernels::Slice(*matrix, lo, hi, 0, matrix->cols())};
      });
}

BroadcastPtr SparkContext::CreateBroadcast(MatrixPtr value) {
  return broadcast_manager_.Create(std::move(value));
}

void SparkContext::DestroyBroadcast(const BroadcastPtr& broadcast) {
  broadcast_manager_.Destroy(broadcast);
}

void SparkContext::Persist(const RddPtr& rdd, StorageLevel level) {
  rdd->MarkPersisted(level);  // Lazy: materialized by the next job.
}

void SparkContext::Unpersist(const RddPtr& rdd) {
  rdd->Unpersist();
  block_manager_.Evict(rdd->id());
}

bool SparkContext::IsMaterialized(const RddPtr& rdd) const {
  return block_manager_.IsMaterialized(rdd->id());
}

size_t SparkContext::CachedMemoryBytes(const RddPtr& rdd) const {
  return block_manager_.MemoryBytes(rdd->id());
}

std::pair<JobRun, double> SparkContext::Execute(const RddPtr& root,
                                                double now,
                                                double extra_duration) {
  const char* job_label =
      obs::TraceEnabled() ? obs::Intern("job:" + root->name()) : "job";
  JobRun run;
  {
    MEMPHIS_TRACE_SPAN1("spark", job_label, "rdd", root->id());
    run = scheduler_.RunJob(root);
  }
  // The job (and any trailing result transfer) occupies one scheduler lane;
  // other jobs overlap on the remaining lanes (FAIR scheduling).
  const double completed = cluster_timeline_.Reserve(
      now, run.duration + extra_duration, job_label);
  ++stats_.jobs;
  stats_.tasks += run.tasks;
  stats_.stages += run.stages;
  RecordJobMetrics(run);
  return {std::move(run), completed};
}

SparkContext::ActionResult SparkContext::Collect(const RddPtr& rdd,
                                                 double now) {
  // Pre-compute the transfer volume from the estimated output size so the
  // whole action reserves one lane.
  const double transfer = cost_model_->CollectTime(
      static_cast<double>(rdd->EstimatedBytes()));
  auto [run, completed] = Execute(rdd, now, transfer);
  MatrixPtr value = StitchPartitions(*run.partitions);
  ++stats_.collects;
  return {std::move(value), completed};
}

SparkContext::ActionResult SparkContext::Count(const RddPtr& rdd, double now) {
  auto [run, completed] = Execute(rdd, now, 0.0);
  (void)run;
  ++stats_.counts;
  return {nullptr, completed};
}

SparkContext::ActionResult SparkContext::CountBackground(const RddPtr& rdd,
                                                         double now) {
  const char* job_label =
      obs::TraceEnabled() ? obs::Intern("bg-count:" + rdd->name()) : "bg-count";
  JobRun run;
  {
    MEMPHIS_TRACE_SPAN1("spark", job_label, "rdd", rdd->id());
    run = scheduler_.RunJob(rdd);
  }
  const double completed =
      background_timeline_.Reserve(now, run.duration, job_label);
  ++stats_.jobs;
  stats_.tasks += run.tasks;
  ++stats_.counts;
  RecordJobMetrics(run);
  return {nullptr, completed};
}

void SparkContext::RecordJobMetrics(const JobRun& run) {
  stats_.job_duration_s.Record(run.duration);
  for (double stage_time : run.stage_times) {
    stats_.stage_time_s.Record(stage_time);
  }
  stats_.shuffle_bytes += static_cast<int64_t>(run.shuffle_bytes);
}

SparkContext::ActionResult SparkContext::Reduce(const RddPtr& rdd,
                                                const Rdd::MapFn& map_fn,
                                                double now) {
  const double transfer =
      cost_model_->CollectTime(static_cast<double>(rdd->EstimatedBytes()));
  auto [run, completed] = Execute(rdd, now, transfer);
  MatrixPtr acc;
  for (const auto& partition : *run.partitions) {
    MatrixPtr partial = map_fn(partition);
    acc = acc == nullptr
              ? partial
              : kernels::Binary(kernels::BinaryOp::kAdd, *acc, *partial);
  }
  MEMPHIS_CHECK(acc != nullptr);
  ++stats_.collects;
  return {std::move(acc), completed};
}

MatrixPtr StitchPartitions(const std::vector<Partition>& partitions) {
  MEMPHIS_CHECK(!partitions.empty());
  std::vector<const Partition*> ordered;
  ordered.reserve(partitions.size());
  for (const auto& partition : partitions) ordered.push_back(&partition);
  std::sort(ordered.begin(), ordered.end(),
            [](const Partition* a, const Partition* b) {
              return a->row_lo < b->row_lo;
            });
  size_t rows = 0;
  const size_t cols = ordered[0]->data->cols();
  for (const Partition* partition : ordered) {
    rows += partition->data->rows();
    MEMPHIS_CHECK_MSG(partition->data->cols() == cols,
                      "collect: ragged partitions");
  }
  auto out = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  size_t offset = 0;
  for (const Partition* partition : ordered) {
    std::copy(partition->data->data(),
              partition->data->data() + partition->data->size(),
              out->data() + offset);
    offset += partition->data->size();
  }
  return out;
}

}  // namespace memphis::spark
