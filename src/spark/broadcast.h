#ifndef MEMPHIS_SPARK_BROADCAST_H_
#define MEMPHIS_SPARK_BROADCAST_H_

#include <cstddef>
#include <unordered_map>

#include "spark/rdd.h"

namespace memphis::spark {

/// Driver-side registry of live broadcast variables. Mirrors the driver
/// BlockManager's role for TorrentBroadcast: serialized chunks stay resident
/// in driver memory from creation until destroy(), which is exactly the
/// dangling-reference problem the lazy garbage collector addresses
/// (Section 2.2, Figure 2(b)).
class BroadcastManager {
 public:
  BroadcastPtr Create(MatrixPtr value);

  /// Destroys a broadcast variable, releasing its driver-side chunks.
  void Destroy(const BroadcastPtr& broadcast);

  /// Bytes currently pinned in driver memory by live broadcasts.
  size_t DriverRetainedBytes() const { return retained_bytes_; }

  size_t num_live() const { return live_.size(); }
  size_t num_created() const { return next_id_ - 1; }

 private:
  int next_id_ = 1;
  size_t retained_bytes_ = 0;
  std::unordered_map<int, BroadcastPtr> live_;
};

}  // namespace memphis::spark

#endif  // MEMPHIS_SPARK_BROADCAST_H_
