#include "spark/broadcast.h"

#include "common/status.h"

namespace memphis::spark {

BroadcastPtr BroadcastManager::Create(MatrixPtr value) {
  MEMPHIS_CHECK(value != nullptr);
  auto broadcast = std::make_shared<Broadcast>(next_id_++, std::move(value));
  retained_bytes_ += broadcast->SizeBytes();
  live_[broadcast->id()] = broadcast;
  return broadcast;
}

void BroadcastManager::Destroy(const BroadcastPtr& broadcast) {
  if (broadcast == nullptr || broadcast->destroyed()) return;
  auto it = live_.find(broadcast->id());
  if (it != live_.end()) {
    retained_bytes_ -= broadcast->SizeBytes();
    live_.erase(it);
  }
  // Destroy() drops the value last: SizeBytes() is needed above.
  broadcast->Destroy();
}

}  // namespace memphis::spark
