#ifndef MEMPHIS_SPARK_BLOCK_MANAGER_H_
#define MEMPHIS_SPARK_BLOCK_MANAGER_H_

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "spark/rdd.h"

namespace memphis::spark {

/// Aggregate view of the executors' BlockManagers: tracks materialized
/// cached partitions against the cluster's storage-memory budget, and
/// performs Spark's own partition-level eviction/spilling when the region
/// overflows (the lineage cache's RDD-level eviction via unpersist sits on
/// top of this, Section 4.1).
class BlockManager {
 public:
  explicit BlockManager(size_t storage_capacity_bytes);

  struct CachedRdd {
    std::shared_ptr<const std::vector<Partition>> partitions;
    size_t memory_bytes = 0;   // bytes resident in memory.
    size_t disk_bytes = 0;     // bytes spilled (MEMORY_AND_DISK).
    size_t dropped_bytes = 0;  // MEMORY_ONLY partitions evicted (recompute).
    StorageLevel level = StorageLevel::kMemoryOnly;
    uint64_t last_access = 0;
  };

  /// Stores the materialized partitions of a persisted RDD. If the storage
  /// region overflows, least-recently-used partitions of *other* RDDs are
  /// spilled (MEMORY_AND_DISK) or dropped (MEMORY_ONLY) first, then the new
  /// RDD's own tail partitions. Returns bytes that went to disk or were
  /// dropped.
  size_t Materialize(const RddPtr& rdd,
                     std::shared_ptr<const std::vector<Partition>> partitions);

  /// True iff the RDD is (fully or partially) materialized here.
  bool IsMaterialized(int rdd_id) const;

  /// Fraction of the RDD's cached bytes that are memory-resident.
  double MemoryResidentFraction(int rdd_id) const;

  /// The partitions, if fully available (memory or disk); nullptr if some
  /// partitions were dropped and must be recomputed. Bumps recency.
  std::shared_ptr<const std::vector<Partition>> Get(int rdd_id);

  /// Bytes that must be re-read from disk when accessing this RDD.
  size_t DiskBytes(int rdd_id) const;

  /// Removes the RDD's blocks (unpersist). Returns bytes freed from memory.
  size_t Evict(int rdd_id);

  /// getRDDStorageInfo analogue: memory bytes used by a cached RDD.
  size_t MemoryBytes(int rdd_id) const;

  size_t storage_used() const { return storage_used_; }
  size_t storage_capacity() const { return storage_capacity_; }

  /// Counters for reports.
  size_t num_spilled_partitions() const { return num_spilled_; }
  size_t num_dropped_partitions() const { return num_dropped_; }

 private:
  /// Frees `needed` bytes by spilling/dropping LRU partitions of cached RDDs
  /// other than `protect_rdd_id`. Returns bytes actually freed.
  size_t EvictLru(size_t needed, int protect_rdd_id);

  size_t storage_capacity_;
  size_t storage_used_ = 0;
  uint64_t access_clock_ = 0;
  size_t num_spilled_ = 0;
  size_t num_dropped_ = 0;
  std::unordered_map<int, CachedRdd> cached_;
};

}  // namespace memphis::spark

#endif  // MEMPHIS_SPARK_BLOCK_MANAGER_H_
