#ifndef MEMPHIS_SPARK_DAG_SCHEDULER_H_
#define MEMPHIS_SPARK_DAG_SCHEDULER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/cost_model.h"
#include "spark/block_manager.h"
#include "spark/rdd.h"

namespace memphis::spark {

/// Outcome of one job: the root RDD's partitions, the job's simulated
/// duration, and counters for reporting.
struct JobRun {
  std::shared_ptr<const std::vector<Partition>> partitions;
  double duration = 0.0;
  int stages = 0;
  int tasks = 0;
  int rdds_computed = 0;
  int rdds_from_cache = 0;
  double shuffle_bytes = 0.0;        // map-side bytes written to shuffle.
  std::vector<double> stage_times;   // per-stage simulated seconds.
};

/// Builds and "runs" jobs: walks the RDD DAG from an action's root, skipping
/// materialized cached RDDs and retained shuffle files, computes the
/// remaining partitions for real, charges analytic stage/task/shuffle costs,
/// and materializes persisted RDDs into the BlockManager.
class DagScheduler {
 public:
  DagScheduler(const sim::CostModel* cost_model, BlockManager* block_manager,
               int total_cores);

  /// Runs a job with `root` as the final RDD of the action.
  JobRun RunJob(const RddPtr& root);

 private:
  struct JobContext {
    std::unordered_map<int, std::shared_ptr<const std::vector<Partition>>>
        memo;
    double compute_time = 0.0;   // summed task time (already wave-scaled).
    double shuffle_time = 0.0;
    double io_time = 0.0;        // cache writes, disk re-reads, broadcasts.
    int stages = 1;
    int tasks = 0;
    int rdds_computed = 0;
    int rdds_from_cache = 0;
    double shuffle_bytes = 0.0;
    std::vector<double> stage_times;
    double stage_mark = 0.0;     // time total at the last stage boundary.

    double TimeTotal() const {
      return compute_time + shuffle_time + io_time;
    }
    /// Closes the current stage at a shuffle boundary (or job end).
    void MarkStage() {
      stage_times.push_back(TimeTotal() - stage_mark);
      stage_mark = TimeTotal();
    }
  };

  std::shared_ptr<const std::vector<Partition>> Compute(const RddPtr& rdd,
                                                        JobContext* ctx);

  /// Wave-scaled time of running `partitions` tasks of `per_task` seconds.
  double WaveTime(int partitions, double per_task) const;

  const sim::CostModel* cost_model_;
  BlockManager* block_manager_;
  int total_cores_;
};

}  // namespace memphis::spark

#endif  // MEMPHIS_SPARK_DAG_SCHEDULER_H_
