#ifndef MEMPHIS_SPARK_SPARK_CONTEXT_H_
#define MEMPHIS_SPARK_SPARK_CONTEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "obs/metrics.h"
#include "sim/cost_model.h"
#include "sim/timeline.h"
#include "spark/block_manager.h"
#include "spark/broadcast.h"
#include "spark/dag_scheduler.h"
#include "spark/rdd.h"

namespace memphis::spark {

/// Statistics exposed for reports/tests. Counters are atomic
/// (obs::Counter): concurrent count() futures and foreground jobs may
/// update them from different threads.
struct SparkStats {
  obs::Counter jobs;
  obs::Counter tasks;
  obs::Counter stages;
  obs::Counter collects;
  obs::Counter counts;
  obs::Counter shuffle_bytes;
  obs::Histogram job_duration_s{1e-6};   // simulated seconds per job.
  obs::Histogram stage_time_s{1e-6};     // simulated seconds per stage.

  /// Registers every field under "spark.<field>".
  void RegisterMetrics(obs::MetricsRegistry* registry);
};

/// Entry point of the simulated Spark backend: owns the cluster's block
/// manager, broadcast registry, job scheduler, and the cluster timeline for
/// asynchronous job execution.
///
/// Actions take the caller's virtual time `now` and return the completion
/// time; the caller decides whether to block (sync) or keep the returned
/// time as a future (prefetch / async count()).
class SparkContext {
 public:
  SparkContext(const SystemConfig& config, const sim::CostModel* cost_model);

  /// Storage-memory budget of the whole cluster (unified region share).
  size_t StorageCapacity() const;

  /// Distributes a driver-resident matrix as a row-partitioned RDD.
  RddPtr Parallelize(const std::string& name, MatrixPtr matrix,
                     int num_partitions);

  /// Registers a broadcast variable (driver chunks retained until destroy).
  BroadcastPtr CreateBroadcast(MatrixPtr value);
  void DestroyBroadcast(const BroadcastPtr& broadcast);

  // --- caching primitives ----------------------------------------------------
  void Persist(const RddPtr& rdd, StorageLevel level);
  void Unpersist(const RddPtr& rdd);
  bool IsMaterialized(const RddPtr& rdd) const;
  /// getRDDStorageInfo analogue.
  size_t CachedMemoryBytes(const RddPtr& rdd) const;

  // --- actions ------------------------------------------------------------------
  struct ActionResult {
    MatrixPtr value;       // nullptr for count().
    double completed_at;   // virtual completion time.
  };

  /// collect(): gathers the RDD's partitions into one driver matrix.
  ActionResult Collect(const RddPtr& rdd, double now);

  /// count(): materializes the RDD (used by lazy cache materialization).
  ActionResult Count(const RddPtr& rdd, double now);

  /// Asynchronous count() on spare cluster capacity (a background timeline):
  /// used by the lazy materialization of cached-but-untriggered RDDs so the
  /// periodic cleanup never delays foreground jobs (Section 4.1).
  ActionResult CountBackground(const RddPtr& rdd, double now);

  /// reduce(): add-reduces per-partition maps on the driver (single-block
  /// aggregates use reduce() instead of reduceByKey(), Section 4.1).
  ActionResult Reduce(const RddPtr& rdd, const Rdd::MapFn& map_fn, double now);

  BlockManager& block_manager() { return block_manager_; }
  const BlockManager& block_manager() const { return block_manager_; }
  BroadcastManager& broadcast_manager() { return broadcast_manager_; }
  sim::MultiLaneTimeline& cluster_timeline() { return cluster_timeline_; }
  const SparkStats& stats() const { return stats_; }
  SparkStats& mutable_stats() { return stats_; }
  int total_cores() const { return total_cores_; }

 private:
  /// Runs the job on one cluster lane (plus `extra_duration` for any result
  /// transfer); returns {run, completion time}.
  std::pair<JobRun, double> Execute(const RddPtr& root, double now,
                                    double extra_duration);

  /// Feeds one finished job's duration / stage times / shuffle volume into
  /// the histograms and counters.
  void RecordJobMetrics(const JobRun& run);

  const sim::CostModel* cost_model_;
  int total_cores_;
  BlockManager block_manager_;
  BroadcastManager broadcast_manager_;
  DagScheduler scheduler_;
  sim::MultiLaneTimeline cluster_timeline_;
  sim::Timeline background_timeline_{"spark-background"};
  SparkStats stats_;
};

/// Stitches row-ordered partitions back into one matrix.
MatrixPtr StitchPartitions(const std::vector<Partition>& partitions);

}  // namespace memphis::spark

#endif  // MEMPHIS_SPARK_SPARK_CONTEXT_H_
