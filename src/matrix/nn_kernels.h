#ifndef MEMPHIS_MATRIX_NN_KERNELS_H_
#define MEMPHIS_MATRIX_NN_KERNELS_H_

#include <cstdint>

#include "matrix/matrix_block.h"

namespace memphis::kernels {

/// Shape descriptor for image tensors stored as matrices: each matrix row is
/// one linearized image in channel-major (C, H, W) order, mirroring how the
/// paper's workloads "linearize" CIFAR-10/ImageNet images (Section 6.3).
struct TensorShape {
  size_t channels = 1;
  size_t height = 1;
  size_t width = 1;
  size_t Size() const { return channels * height * width; }
};

/// max(0, x).
MatrixPtr Relu(const MatrixBlock& a);

/// Gradient mask helper: 1 where x > 0.
MatrixPtr ReluBackward(const MatrixBlock& pre_activation,
                       const MatrixBlock& upstream);

/// Row-wise softmax.
MatrixPtr Softmax(const MatrixBlock& a);

/// Inverted-dropout with the given keep probability and deterministic seed.
MatrixPtr Dropout(const MatrixBlock& a, double keep_prob, uint64_t seed);

/// Fully-connected forward: X * W + bias (bias is a 1 x n row vector).
MatrixPtr Affine(const MatrixBlock& x, const MatrixBlock& w,
                 const MatrixBlock& bias);

/// Direct 2D convolution. `x` is (batch x C*H*W), `filters` is
/// (num_filters x C*kh*kw). Stride 1, zero padding `pad`.
/// Output is (batch x num_filters*oh*ow).
MatrixPtr Conv2d(const MatrixBlock& x, const MatrixBlock& filters,
                 const TensorShape& in_shape, size_t kernel_h, size_t kernel_w,
                 size_t pad, size_t stride, TensorShape* out_shape);

/// 2D max pooling with square window `pool` and equal stride.
MatrixPtr MaxPool(const MatrixBlock& x, const TensorShape& in_shape,
                  size_t pool, TensorShape* out_shape);

/// FLOP estimate of a conv2d (used by the eviction cost term c(o):
/// "element-wise ReLU before Conv2d", Section 4.2).
double Conv2dFlops(size_t batch, const TensorShape& in_shape,
                   size_t num_filters, size_t kernel_h, size_t kernel_w,
                   size_t pad, size_t stride);

}  // namespace memphis::kernels

#endif  // MEMPHIS_MATRIX_NN_KERNELS_H_
