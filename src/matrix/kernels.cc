#include "matrix/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/util.h"

namespace memphis::kernels {

namespace {

// --- parallelism parameters -------------------------------------------------
// kParallelElems / kElemGrain / kReduceGrain live in kernels.h (shared with
// the fused tile executor); the constants below are matmult/transpose-local.
constexpr size_t kMatMultParallelFlops = size_t{1} << 20;
constexpr size_t kMatMultRowGrain = 16;              // C rows per task.
constexpr size_t kMatMultBlockK = 256;               // A/B k-panel (L2).
constexpr size_t kTransposeTile = 64;                // 64x64 = 32 KB tiles.

/// Rows per chunk for row-partitioned kernels: aims at ~kElemGrain elements
/// of work per chunk, at least one row.
size_t RowGrain(size_t cols) {
  return std::max<size_t>(1, kElemGrain / std::max<size_t>(1, cols));
}

}  // namespace

const char* ToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMin:
      return "min";
    case BinaryOp::kMax:
      return "max";
    case BinaryOp::kPow:
      return "^";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEq:
      return ">=";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEq:
      return "<=";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNeq:
      return "!=";
  }
  return "?";
}

const char* ToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kExp:
      return "exp";
    case UnaryOp::kLog:
      return "log";
    case UnaryOp::kSqrt:
      return "sqrt";
    case UnaryOp::kAbs:
      return "abs";
    case UnaryOp::kSign:
      return "sign";
    case UnaryOp::kRound:
      return "round";
    case UnaryOp::kFloor:
      return "floor";
    case UnaryOp::kCeil:
      return "ceil";
    case UnaryOp::kNeg:
      return "neg";
    case UnaryOp::kSigmoid:
      return "sigmoid";
  }
  return "?";
}

MatrixPtr MatMult(const MatrixBlock& a, const MatrixBlock& b) {
  MEMPHIS_CHECK_MSG(a.cols() == b.rows(), "matmult shape mismatch");
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  auto out = std::make_shared<MatrixBlock>(m, n, 0.0);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = out->data();
  // Cache-blocked i-k-j: the kb panel of B is reused across every row of the
  // chunk before moving on. For a fixed (i, j) the additions into c[i][j]
  // still happen in ascending kk order, so the result is bitwise identical
  // to the unblocked serial loop at any chunking.
  auto rows_task = [&](size_t i0, size_t i1) {
    for (size_t kb = 0; kb < k; kb += kMatMultBlockK) {
      const size_t kend = std::min(k, kb + kMatMultBlockK);
      for (size_t i = i0; i < i1; ++i) {
        const double* arow = pa + i * k;
        double* crow = pc + i * n;
        for (size_t kk = kb; kk < kend; ++kk) {
          const double av = arow[kk];
          if (av == 0.0) continue;
          const double* brow = pb + kk * n;
          for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  };
  if (2 * m * k * n < kMatMultParallelFlops) {
    rows_task(0, m);
  } else {
    ParallelFor(0, m, kMatMultRowGrain, rows_task);
  }
  return out;
}

MatrixPtr Transpose(const MatrixBlock& a) {
  const size_t rows = a.rows(), cols = a.cols();
  auto out = std::make_shared<MatrixBlock>(cols, rows, 0.0);
  const double* src = a.data();
  double* dst = out->data();
  // 64x64 tiles keep one input tile and one output tile L1-resident instead
  // of striding the whole output column-by-column per input row.
  auto tile_rows = [&](size_t r0, size_t r1) {
    for (size_t cb = 0; cb < cols; cb += kTransposeTile) {
      const size_t cend = std::min(cols, cb + kTransposeTile);
      for (size_t r = r0; r < r1; ++r) {
        const double* srow = src + r * cols;
        for (size_t c = cb; c < cend; ++c) dst[c * rows + r] = srow[c];
      }
    }
  };
  if (rows * cols < kParallelElems) {
    tile_rows(0, rows);
  } else {
    ParallelFor(0, rows, kTransposeTile, tile_rows);
  }
  return out;
}

MatrixPtr Binary(BinaryOp op, const MatrixBlock& a, const MatrixBlock& b) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  const size_t rows = a.rows(), cols = a.cols();
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out->data();
  const bool parallel = a.size() >= kParallelElems;
  auto run = [&](size_t grain, const std::function<void(size_t, size_t)>& fn,
                 size_t count) {
    if (parallel) {
      ParallelFor(0, count, grain, fn);
    } else {
      fn(0, count);
    }
  };
  if (b.rows() == rows && b.cols() == cols) {
    run(kElemGrain,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i)
            po[i] = ApplyBinary(op, pa[i], pb[i]);
        },
        a.size());
  } else if (b.rows() == 1 && b.cols() == 1) {
    const double s = pb[0];
    run(kElemGrain,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) po[i] = ApplyBinary(op, pa[i], s);
        },
        a.size());
  } else if (b.rows() == rows && b.cols() == 1) {
    // Column-vector broadcast: one b value per row, streamed over the row.
    run(RowGrain(cols),
        [&](size_t r0, size_t r1) {
          for (size_t r = r0; r < r1; ++r) {
            const double s = pb[r];
            const double* arow = pa + r * cols;
            double* orow = po + r * cols;
            for (size_t c = 0; c < cols; ++c)
              orow[c] = ApplyBinary(op, arow[c], s);
          }
        },
        rows);
  } else if (b.cols() == cols && b.rows() == 1) {
    // Row-vector broadcast: b is a single row reused against every a row.
    run(RowGrain(cols),
        [&](size_t r0, size_t r1) {
          for (size_t r = r0; r < r1; ++r) {
            const double* arow = pa + r * cols;
            double* orow = po + r * cols;
            for (size_t c = 0; c < cols; ++c)
              orow[c] = ApplyBinary(op, arow[c], pb[c]);
          }
        },
        rows);
  } else {
    throw MemphisError("binary op: incompatible shapes " +
                       std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()) + " vs " +
                       std::to_string(b.rows()) + "x" +
                       std::to_string(b.cols()));
  }
  return out;
}

MatrixPtr ScalarOp(BinaryOp op, const MatrixBlock& a, double scalar,
                   bool scalar_left) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  const double* pa = a.data();
  double* po = out->data();
  auto task = [&](size_t lo, size_t hi) {
    if (scalar_left) {
      for (size_t i = lo; i < hi; ++i) po[i] = ApplyBinary(op, scalar, pa[i]);
    } else {
      for (size_t i = lo; i < hi; ++i) po[i] = ApplyBinary(op, pa[i], scalar);
    }
  };
  if (a.size() < kParallelElems) {
    task(0, a.size());
  } else {
    ParallelFor(0, a.size(), kElemGrain, task);
  }
  return out;
}

MatrixPtr Unary(UnaryOp op, const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  const double* pa = a.data();
  double* po = out->data();
  auto task = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) po[i] = ApplyUnary(op, pa[i]);
  };
  if (a.size() < kParallelElems) {
    task(0, a.size());
  } else {
    ParallelFor(0, a.size(), kElemGrain, task);
  }
  return out;
}

double Sum(const MatrixBlock& a) {
  const double* pa = a.data();
  const size_t size = a.size();
  if (size < kParallelElems) {
    double total = 0.0;
    for (size_t i = 0; i < size; ++i) total += pa[i];
    return total;
  }
  // Fixed-size chunks with the partials reduced in chunk-index order: the
  // summation tree depends only on the input size, so the result is the
  // same at every thread count.
  const size_t num_chunks = CeilDiv(size, kReduceGrain);
  std::vector<double> partials(num_chunks, 0.0);
  ParallelFor(0, size, kReduceGrain, [&](size_t lo, size_t hi) {
    double total = 0.0;
    for (size_t i = lo; i < hi; ++i) total += pa[i];
    partials[lo / kReduceGrain] = total;
  });
  double total = 0.0;
  for (double partial : partials) total += partial;
  return total;
}

double Mean(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.size() > 0);
  return Sum(a) / static_cast<double>(a.size());
}

double Min(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.size() > 0);
  const double* pa = a.data();
  const size_t size = a.size();
  if (size < kParallelElems) return *std::min_element(pa, pa + size);
  // min is exactly associative, so chunked reduction is bitwise safe.
  const size_t num_chunks = CeilDiv(size, kReduceGrain);
  std::vector<double> partials(num_chunks);
  ParallelFor(0, size, kReduceGrain, [&](size_t lo, size_t hi) {
    partials[lo / kReduceGrain] = *std::min_element(pa + lo, pa + hi);
  });
  return *std::min_element(partials.begin(), partials.end());
}

double Max(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.size() > 0);
  const double* pa = a.data();
  const size_t size = a.size();
  if (size < kParallelElems) return *std::max_element(pa, pa + size);
  const size_t num_chunks = CeilDiv(size, kReduceGrain);
  std::vector<double> partials(num_chunks);
  ParallelFor(0, size, kReduceGrain, [&](size_t lo, size_t hi) {
    partials[lo / kReduceGrain] = *std::max_element(pa + lo, pa + hi);
  });
  return *std::max_element(partials.begin(), partials.end());
}

namespace {

/// Column-chunked parallel driver for the colwise aggregates: each task owns
/// the column range [c0, c1) and accumulates over *all* rows in row order,
/// so every output cell sees the exact accumulation order of the serial
/// loop -- bitwise identical at any thread count.
void ForColumnChunks(const MatrixBlock& a,
                     const std::function<void(size_t, size_t)>& fn) {
  const size_t cols = a.cols();
  if (a.size() < kParallelElems) {
    fn(0, cols);
    return;
  }
  const size_t grain =
      std::max<size_t>(1, kElemGrain / std::max<size_t>(1, a.rows()));
  ParallelFor(0, cols, grain, fn);
}

}  // namespace

MatrixPtr ColSums(const MatrixBlock& a) {
  const size_t rows = a.rows(), cols = a.cols();
  auto out = std::make_shared<MatrixBlock>(1, cols, 0.0);
  const double* pa = a.data();
  double* po = out->data();
  ForColumnChunks(a, [&](size_t c0, size_t c1) {
    for (size_t r = 0; r < rows; ++r) {
      const double* arow = pa + r * cols;
      for (size_t c = c0; c < c1; ++c) po[c] += arow[c];
    }
  });
  return out;
}

MatrixPtr ColMeans(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.rows() > 0);
  auto sums = ColSums(a);
  return ScalarOp(BinaryOp::kDiv, *sums, static_cast<double>(a.rows()));
}

MatrixPtr ColMins(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.rows() > 0);
  const size_t rows = a.rows(), cols = a.cols();
  auto out = std::make_shared<MatrixBlock>(1, cols, 0.0);
  const double* pa = a.data();
  double* po = out->data();
  ForColumnChunks(a, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) po[c] = pa[c];
    for (size_t r = 1; r < rows; ++r) {
      const double* arow = pa + r * cols;
      for (size_t c = c0; c < c1; ++c) po[c] = std::min(po[c], arow[c]);
    }
  });
  return out;
}

MatrixPtr ColMaxs(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.rows() > 0);
  const size_t rows = a.rows(), cols = a.cols();
  auto out = std::make_shared<MatrixBlock>(1, cols, 0.0);
  const double* pa = a.data();
  double* po = out->data();
  ForColumnChunks(a, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) po[c] = pa[c];
    for (size_t r = 1; r < rows; ++r) {
      const double* arow = pa + r * cols;
      for (size_t c = c0; c < c1; ++c) po[c] = std::max(po[c], arow[c]);
    }
  });
  return out;
}

MatrixPtr ColVars(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.rows() > 1);
  auto means = ColMeans(a);
  const size_t rows = a.rows(), cols = a.cols();
  auto out = std::make_shared<MatrixBlock>(1, cols, 0.0);
  const double* pa = a.data();
  const double* pm = means->data();
  double* po = out->data();
  const double denom = static_cast<double>(rows - 1);
  ForColumnChunks(a, [&](size_t c0, size_t c1) {
    for (size_t r = 0; r < rows; ++r) {
      const double* arow = pa + r * cols;
      for (size_t c = c0; c < c1; ++c) {
        const double d = arow[c] - pm[c];
        po[c] += d * d;
      }
    }
    for (size_t c = c0; c < c1; ++c) po[c] /= denom;
  });
  return out;
}

MatrixPtr RowSums(const MatrixBlock& a) {
  const size_t rows = a.rows(), cols = a.cols();
  auto out = std::make_shared<MatrixBlock>(rows, 1, 0.0);
  const double* pa = a.data();
  double* po = out->data();
  auto task = [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const double* arow = pa + r * cols;
      double total = 0.0;
      for (size_t c = 0; c < cols; ++c) total += arow[c];
      po[r] = total;
    }
  };
  if (a.size() < kParallelElems) {
    task(0, rows);
  } else {
    ParallelFor(0, rows, RowGrain(cols), task);
  }
  return out;
}

MatrixPtr RowMeans(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.cols() > 0);
  auto sums = RowSums(a);
  return ScalarOp(BinaryOp::kDiv, *sums, static_cast<double>(a.cols()));
}

MatrixPtr RowMaxs(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.cols() > 0);
  const size_t rows = a.rows(), cols = a.cols();
  auto out = std::make_shared<MatrixBlock>(rows, 1, 0.0);
  const double* pa = a.data();
  double* po = out->data();
  auto task = [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const double* arow = pa + r * cols;
      double best = arow[0];
      for (size_t c = 1; c < cols; ++c) best = std::max(best, arow[c]);
      po[r] = best;
    }
  };
  if (a.size() < kParallelElems) {
    task(0, rows);
  } else {
    ParallelFor(0, rows, RowGrain(cols), task);
  }
  return out;
}

MatrixPtr RowIndexMax(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.cols() > 0);
  const size_t rows = a.rows(), cols = a.cols();
  auto out = std::make_shared<MatrixBlock>(rows, 1, 0.0);
  const double* pa = a.data();
  double* po = out->data();
  auto task = [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const double* arow = pa + r * cols;
      size_t best = 0;
      for (size_t c = 1; c < cols; ++c)
        if (arow[c] > arow[best]) best = c;
      po[r] = static_cast<double>(best + 1);  // 1-based, as SystemDS.
    }
  };
  if (a.size() < kParallelElems) {
    task(0, rows);
  } else {
    ParallelFor(0, rows, RowGrain(cols), task);
  }
  return out;
}

MatrixPtr Slice(const MatrixBlock& a, size_t row_lo, size_t row_hi,
                size_t col_lo, size_t col_hi) {
  MEMPHIS_CHECK_MSG(row_lo <= row_hi && row_hi <= a.rows() &&
                        col_lo <= col_hi && col_hi <= a.cols(),
                    "slice out of bounds");
  auto out =
      std::make_shared<MatrixBlock>(row_hi - row_lo, col_hi - col_lo, 0.0);
  for (size_t r = row_lo; r < row_hi; ++r)
    for (size_t c = col_lo; c < col_hi; ++c)
      out->At(r - row_lo, c - col_lo) = a.At(r, c);
  return out;
}

MatrixPtr RBind(const MatrixBlock& a, const MatrixBlock& b) {
  MEMPHIS_CHECK_MSG(a.cols() == b.cols(), "rbind column mismatch");
  auto out = std::make_shared<MatrixBlock>(a.rows() + b.rows(), a.cols(), 0.0);
  std::copy(a.data(), a.data() + a.size(), out->data());
  std::copy(b.data(), b.data() + b.size(), out->data() + a.size());
  return out;
}

MatrixPtr CBind(const MatrixBlock& a, const MatrixBlock& b) {
  MEMPHIS_CHECK_MSG(a.rows() == b.rows(), "cbind row mismatch");
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols() + b.cols(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out->At(r, c) = a.At(r, c);
    for (size_t c = 0; c < b.cols(); ++c) out->At(r, a.cols() + c) = b.At(r, c);
  }
  return out;
}

MatrixPtr Solve(const MatrixBlock& a, const MatrixBlock& b) {
  MEMPHIS_CHECK_MSG(a.rows() == a.cols(), "solve requires square A");
  MEMPHIS_CHECK_MSG(b.rows() == a.rows(), "solve shape mismatch");
  const size_t n = a.rows();
  const size_t m = b.cols();
  // Work on copies: LU with partial pivoting.
  std::vector<double> lu(a.data(), a.data() + a.size());
  std::vector<double> x(b.data(), b.data() + b.size());
  std::vector<size_t> piv(n);
  for (size_t i = 0; i < n; ++i) piv[i] = i;

  for (size_t k = 0; k < n; ++k) {
    size_t pivot = k;
    double best = std::fabs(lu[k * n + k]);
    for (size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu[i * n + k]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    MEMPHIS_CHECK_MSG(best > 1e-300, "solve: singular matrix");
    if (pivot != k) {
      for (size_t j = 0; j < n; ++j) std::swap(lu[k * n + j], lu[pivot * n + j]);
      for (size_t j = 0; j < m; ++j) std::swap(x[k * m + j], x[pivot * m + j]);
    }
    const double diag = lu[k * n + k];
    for (size_t i = k + 1; i < n; ++i) {
      const double factor = lu[i * n + k] / diag;
      lu[i * n + k] = factor;
      for (size_t j = k + 1; j < n; ++j) lu[i * n + j] -= factor * lu[k * n + j];
      for (size_t j = 0; j < m; ++j) x[i * m + j] -= factor * x[k * m + j];
    }
  }
  // Back substitution.
  for (size_t ki = n; ki-- > 0;) {
    const double diag = lu[ki * n + ki];
    for (size_t j = 0; j < m; ++j) {
      double v = x[ki * m + j];
      for (size_t c = ki + 1; c < n; ++c) v -= lu[ki * n + c] * x[c * m + j];
      x[ki * m + j] = v / diag;
    }
  }
  return MatrixBlock::Create(n, m, std::move(x));
}

MatrixPtr Rand(size_t rows, size_t cols, double lo, double hi, double sparsity,
               uint64_t seed) {
  Rng rng(seed);
  auto out = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  for (size_t i = 0; i < rows * cols; ++i) {
    if (sparsity >= 1.0 || rng.NextDouble() < sparsity) {
      out->data()[i] = rng.NextDouble(lo, hi);
    }
  }
  return out;
}

MatrixPtr RandGaussian(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  auto out = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  for (size_t i = 0; i < rows * cols; ++i) out->data()[i] = rng.NextGaussian();
  return out;
}

MatrixPtr Seq(double from, double to, double incr) {
  MEMPHIS_CHECK(incr != 0.0);
  std::vector<double> values;
  if (incr > 0) {
    for (double v = from; v <= to + 1e-12; v += incr) values.push_back(v);
  } else {
    for (double v = from; v >= to - 1e-12; v += incr) values.push_back(v);
  }
  const size_t count = values.size();  // Before the move: argument
                                       // evaluation order is unspecified.
  return MatrixBlock::Create(count, 1, std::move(values));
}

MatrixPtr Identity(size_t n) {
  auto out = std::make_shared<MatrixBlock>(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) out->At(i, i) = 1.0;
  return out;
}

MatrixPtr Diag(const MatrixBlock& a) {
  if (a.cols() == 1) {
    auto out = std::make_shared<MatrixBlock>(a.rows(), a.rows(), 0.0);
    for (size_t i = 0; i < a.rows(); ++i) out->At(i, i) = a.At(i, 0);
    return out;
  }
  MEMPHIS_CHECK_MSG(a.rows() == a.cols(), "diag requires vector or square");
  auto out = std::make_shared<MatrixBlock>(a.rows(), 1, 0.0);
  for (size_t i = 0; i < a.rows(); ++i) out->At(i, 0) = a.At(i, i);
  return out;
}

double MatMultFlops(size_t m, size_t k, size_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

}  // namespace memphis::kernels
