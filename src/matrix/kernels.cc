#include "matrix/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace memphis::kernels {

namespace {

double ApplyBinary(BinaryOp op, double x, double y) {
  switch (op) {
    case BinaryOp::kAdd:
      return x + y;
    case BinaryOp::kSub:
      return x - y;
    case BinaryOp::kMul:
      return x * y;
    case BinaryOp::kDiv:
      return x / y;
    case BinaryOp::kMin:
      return std::min(x, y);
    case BinaryOp::kMax:
      return std::max(x, y);
    case BinaryOp::kPow:
      return std::pow(x, y);
    case BinaryOp::kGreater:
      return x > y ? 1.0 : 0.0;
    case BinaryOp::kGreaterEq:
      return x >= y ? 1.0 : 0.0;
    case BinaryOp::kLess:
      return x < y ? 1.0 : 0.0;
    case BinaryOp::kLessEq:
      return x <= y ? 1.0 : 0.0;
    case BinaryOp::kEq:
      return x == y ? 1.0 : 0.0;
    case BinaryOp::kNeq:
      return x != y ? 1.0 : 0.0;
  }
  return 0.0;
}

double ApplyUnary(UnaryOp op, double x) {
  switch (op) {
    case UnaryOp::kExp:
      return std::exp(x);
    case UnaryOp::kLog:
      return std::log(x);
    case UnaryOp::kSqrt:
      return std::sqrt(x);
    case UnaryOp::kAbs:
      return std::fabs(x);
    case UnaryOp::kSign:
      return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0);
    case UnaryOp::kRound:
      return std::round(x);
    case UnaryOp::kFloor:
      return std::floor(x);
    case UnaryOp::kCeil:
      return std::ceil(x);
    case UnaryOp::kNeg:
      return -x;
    case UnaryOp::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return 0.0;
}

}  // namespace

const char* ToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMin:
      return "min";
    case BinaryOp::kMax:
      return "max";
    case BinaryOp::kPow:
      return "^";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEq:
      return ">=";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEq:
      return "<=";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNeq:
      return "!=";
  }
  return "?";
}

const char* ToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kExp:
      return "exp";
    case UnaryOp::kLog:
      return "log";
    case UnaryOp::kSqrt:
      return "sqrt";
    case UnaryOp::kAbs:
      return "abs";
    case UnaryOp::kSign:
      return "sign";
    case UnaryOp::kRound:
      return "round";
    case UnaryOp::kFloor:
      return "floor";
    case UnaryOp::kCeil:
      return "ceil";
    case UnaryOp::kNeg:
      return "neg";
    case UnaryOp::kSigmoid:
      return "sigmoid";
  }
  return "?";
}

MatrixPtr MatMult(const MatrixBlock& a, const MatrixBlock& b) {
  MEMPHIS_CHECK_MSG(a.cols() == b.rows(), "matmult shape mismatch");
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  auto out = std::make_shared<MatrixBlock>(m, n, 0.0);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = out->data();
  // i-k-j loop order: streams through b and c rows, cache friendly.
  for (size_t i = 0; i < m; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = pa[i * k + kk];
      if (av == 0.0) continue;
      const double* brow = pb + kk * n;
      double* crow = pc + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return out;
}

MatrixPtr Transpose(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.cols(), a.rows(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r)
    for (size_t c = 0; c < a.cols(); ++c) out->At(c, r) = a.At(r, c);
  return out;
}

MatrixPtr Binary(BinaryOp op, const MatrixBlock& a, const MatrixBlock& b) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  if (b.rows() == a.rows() && b.cols() == a.cols()) {
    for (size_t i = 0; i < a.size(); ++i)
      out->data()[i] = ApplyBinary(op, a.data()[i], b.data()[i]);
  } else if (b.rows() == 1 && b.cols() == 1) {
    const double s = b.data()[0];
    for (size_t i = 0; i < a.size(); ++i)
      out->data()[i] = ApplyBinary(op, a.data()[i], s);
  } else if (b.rows() == a.rows() && b.cols() == 1) {
    for (size_t r = 0; r < a.rows(); ++r) {
      const double s = b.At(r, 0);
      for (size_t c = 0; c < a.cols(); ++c)
        out->At(r, c) = ApplyBinary(op, a.At(r, c), s);
    }
  } else if (b.cols() == a.cols() && b.rows() == 1) {
    for (size_t r = 0; r < a.rows(); ++r)
      for (size_t c = 0; c < a.cols(); ++c)
        out->At(r, c) = ApplyBinary(op, a.At(r, c), b.At(0, c));
  } else {
    throw MemphisError("binary op: incompatible shapes " +
                       std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()) + " vs " +
                       std::to_string(b.rows()) + "x" +
                       std::to_string(b.cols()));
  }
  return out;
}

MatrixPtr ScalarOp(BinaryOp op, const MatrixBlock& a, double scalar,
                   bool scalar_left) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] = scalar_left ? ApplyBinary(op, scalar, a.data()[i])
                                 : ApplyBinary(op, a.data()[i], scalar);
  }
  return out;
}

MatrixPtr Unary(UnaryOp op, const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t i = 0; i < a.size(); ++i)
    out->data()[i] = ApplyUnary(op, a.data()[i]);
  return out;
}

double Sum(const MatrixBlock& a) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += a.data()[i];
  return total;
}

double Mean(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.size() > 0);
  return Sum(a) / static_cast<double>(a.size());
}

double Min(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.size() > 0);
  return *std::min_element(a.data(), a.data() + a.size());
}

double Max(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.size() > 0);
  return *std::max_element(a.data(), a.data() + a.size());
}

MatrixPtr ColSums(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(1, a.cols(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r)
    for (size_t c = 0; c < a.cols(); ++c) out->At(0, c) += a.At(r, c);
  return out;
}

MatrixPtr ColMeans(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.rows() > 0);
  auto sums = ColSums(a);
  return ScalarOp(BinaryOp::kDiv, *sums, static_cast<double>(a.rows()));
}

MatrixPtr ColMins(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.rows() > 0);
  auto out = std::make_shared<MatrixBlock>(1, a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) out->At(0, c) = a.At(0, c);
  for (size_t r = 1; r < a.rows(); ++r)
    for (size_t c = 0; c < a.cols(); ++c)
      out->At(0, c) = std::min(out->At(0, c), a.At(r, c));
  return out;
}

MatrixPtr ColMaxs(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.rows() > 0);
  auto out = std::make_shared<MatrixBlock>(1, a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) out->At(0, c) = a.At(0, c);
  for (size_t r = 1; r < a.rows(); ++r)
    for (size_t c = 0; c < a.cols(); ++c)
      out->At(0, c) = std::max(out->At(0, c), a.At(r, c));
  return out;
}

MatrixPtr ColVars(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.rows() > 1);
  auto means = ColMeans(a);
  auto out = std::make_shared<MatrixBlock>(1, a.cols(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      const double d = a.At(r, c) - means->At(0, c);
      out->At(0, c) += d * d;
    }
  }
  const double denom = static_cast<double>(a.rows() - 1);
  for (size_t c = 0; c < a.cols(); ++c) out->At(0, c) /= denom;
  return out;
}

MatrixPtr RowSums(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), 1, 0.0);
  for (size_t r = 0; r < a.rows(); ++r)
    for (size_t c = 0; c < a.cols(); ++c) out->At(r, 0) += a.At(r, c);
  return out;
}

MatrixPtr RowMeans(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.cols() > 0);
  auto sums = RowSums(a);
  return ScalarOp(BinaryOp::kDiv, *sums, static_cast<double>(a.cols()));
}

MatrixPtr RowMaxs(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.cols() > 0);
  auto out = std::make_shared<MatrixBlock>(a.rows(), 1, 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    double best = a.At(r, 0);
    for (size_t c = 1; c < a.cols(); ++c) best = std::max(best, a.At(r, c));
    out->At(r, 0) = best;
  }
  return out;
}

MatrixPtr RowIndexMax(const MatrixBlock& a) {
  MEMPHIS_CHECK(a.cols() > 0);
  auto out = std::make_shared<MatrixBlock>(a.rows(), 1, 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    size_t best = 0;
    for (size_t c = 1; c < a.cols(); ++c)
      if (a.At(r, c) > a.At(r, best)) best = c;
    out->At(r, 0) = static_cast<double>(best + 1);  // 1-based, as SystemDS.
  }
  return out;
}

MatrixPtr Slice(const MatrixBlock& a, size_t row_lo, size_t row_hi,
                size_t col_lo, size_t col_hi) {
  MEMPHIS_CHECK_MSG(row_lo <= row_hi && row_hi <= a.rows() &&
                        col_lo <= col_hi && col_hi <= a.cols(),
                    "slice out of bounds");
  auto out =
      std::make_shared<MatrixBlock>(row_hi - row_lo, col_hi - col_lo, 0.0);
  for (size_t r = row_lo; r < row_hi; ++r)
    for (size_t c = col_lo; c < col_hi; ++c)
      out->At(r - row_lo, c - col_lo) = a.At(r, c);
  return out;
}

MatrixPtr RBind(const MatrixBlock& a, const MatrixBlock& b) {
  MEMPHIS_CHECK_MSG(a.cols() == b.cols(), "rbind column mismatch");
  auto out = std::make_shared<MatrixBlock>(a.rows() + b.rows(), a.cols(), 0.0);
  std::copy(a.data(), a.data() + a.size(), out->data());
  std::copy(b.data(), b.data() + b.size(), out->data() + a.size());
  return out;
}

MatrixPtr CBind(const MatrixBlock& a, const MatrixBlock& b) {
  MEMPHIS_CHECK_MSG(a.rows() == b.rows(), "cbind row mismatch");
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols() + b.cols(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out->At(r, c) = a.At(r, c);
    for (size_t c = 0; c < b.cols(); ++c) out->At(r, a.cols() + c) = b.At(r, c);
  }
  return out;
}

MatrixPtr Solve(const MatrixBlock& a, const MatrixBlock& b) {
  MEMPHIS_CHECK_MSG(a.rows() == a.cols(), "solve requires square A");
  MEMPHIS_CHECK_MSG(b.rows() == a.rows(), "solve shape mismatch");
  const size_t n = a.rows();
  const size_t m = b.cols();
  // Work on copies: LU with partial pivoting.
  std::vector<double> lu(a.data(), a.data() + a.size());
  std::vector<double> x(b.data(), b.data() + b.size());
  std::vector<size_t> piv(n);
  for (size_t i = 0; i < n; ++i) piv[i] = i;

  for (size_t k = 0; k < n; ++k) {
    size_t pivot = k;
    double best = std::fabs(lu[k * n + k]);
    for (size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu[i * n + k]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    MEMPHIS_CHECK_MSG(best > 1e-300, "solve: singular matrix");
    if (pivot != k) {
      for (size_t j = 0; j < n; ++j) std::swap(lu[k * n + j], lu[pivot * n + j]);
      for (size_t j = 0; j < m; ++j) std::swap(x[k * m + j], x[pivot * m + j]);
    }
    const double diag = lu[k * n + k];
    for (size_t i = k + 1; i < n; ++i) {
      const double factor = lu[i * n + k] / diag;
      lu[i * n + k] = factor;
      for (size_t j = k + 1; j < n; ++j) lu[i * n + j] -= factor * lu[k * n + j];
      for (size_t j = 0; j < m; ++j) x[i * m + j] -= factor * x[k * m + j];
    }
  }
  // Back substitution.
  for (size_t ki = n; ki-- > 0;) {
    const double diag = lu[ki * n + ki];
    for (size_t j = 0; j < m; ++j) {
      double v = x[ki * m + j];
      for (size_t c = ki + 1; c < n; ++c) v -= lu[ki * n + c] * x[c * m + j];
      x[ki * m + j] = v / diag;
    }
  }
  return MatrixBlock::Create(n, m, std::move(x));
}

MatrixPtr Rand(size_t rows, size_t cols, double lo, double hi, double sparsity,
               uint64_t seed) {
  Rng rng(seed);
  auto out = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  for (size_t i = 0; i < rows * cols; ++i) {
    if (sparsity >= 1.0 || rng.NextDouble() < sparsity) {
      out->data()[i] = rng.NextDouble(lo, hi);
    }
  }
  return out;
}

MatrixPtr RandGaussian(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  auto out = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  for (size_t i = 0; i < rows * cols; ++i) out->data()[i] = rng.NextGaussian();
  return out;
}

MatrixPtr Seq(double from, double to, double incr) {
  MEMPHIS_CHECK(incr != 0.0);
  std::vector<double> values;
  if (incr > 0) {
    for (double v = from; v <= to + 1e-12; v += incr) values.push_back(v);
  } else {
    for (double v = from; v >= to - 1e-12; v += incr) values.push_back(v);
  }
  const size_t count = values.size();  // Before the move: argument
                                       // evaluation order is unspecified.
  return MatrixBlock::Create(count, 1, std::move(values));
}

MatrixPtr Identity(size_t n) {
  auto out = std::make_shared<MatrixBlock>(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) out->At(i, i) = 1.0;
  return out;
}

MatrixPtr Diag(const MatrixBlock& a) {
  if (a.cols() == 1) {
    auto out = std::make_shared<MatrixBlock>(a.rows(), a.rows(), 0.0);
    for (size_t i = 0; i < a.rows(); ++i) out->At(i, i) = a.At(i, 0);
    return out;
  }
  MEMPHIS_CHECK_MSG(a.rows() == a.cols(), "diag requires vector or square");
  auto out = std::make_shared<MatrixBlock>(a.rows(), 1, 0.0);
  for (size_t i = 0; i < a.rows(); ++i) out->At(i, 0) = a.At(i, i);
  return out;
}

double MatMultFlops(size_t m, size_t k, size_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

}  // namespace memphis::kernels
