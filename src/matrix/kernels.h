#ifndef MEMPHIS_MATRIX_KERNELS_H_
#define MEMPHIS_MATRIX_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "matrix/matrix_block.h"

namespace memphis::kernels {

// --- parallelism parameters -------------------------------------------------
// Blocks below kParallelElems elements stay on the calling thread: the pool
// handoff costs more than the loop. Grains are fixed by shape only (never by
// the pool size) so chunk boundaries -- and with them the per-chunk partial
// sums -- are identical at every thread count (see DESIGN.md, "Threading
// model"). Shared with the fused tile executor (fused_kernel.h), which must
// reproduce the exact chunk structure to stay bitwise identical to the
// unfused kernels.
inline constexpr size_t kParallelElems = size_t{1} << 14;  // 16K doubles.
inline constexpr size_t kElemGrain = size_t{1} << 15;      // Elementwise chunk.
inline constexpr size_t kReduceGrain = size_t{1} << 15;    // Partial sums.

/// Elementwise binary operators. Comparison operators produce 0/1 matrices.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMin,
  kMax,
  kPow,
  kGreater,
  kGreaterEq,
  kLess,
  kLessEq,
  kEq,
  kNeq,
};

/// Elementwise unary operators.
enum class UnaryOp {
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kSign,
  kRound,
  kFloor,
  kCeil,
  kNeg,
  kSigmoid,
};

const char* ToString(BinaryOp op);
const char* ToString(UnaryOp op);

/// Scalar semantics of every elementwise operator. Inline in the header so
/// the unfused kernels (kernels.cc) and the fused tile interpreter
/// (fused_kernel.cc) evaluate the exact same expression per element --
/// fusion may change memory traffic, never values.
inline double ApplyBinary(BinaryOp op, double x, double y) {
  switch (op) {
    case BinaryOp::kAdd:
      return x + y;
    case BinaryOp::kSub:
      return x - y;
    case BinaryOp::kMul:
      return x * y;
    case BinaryOp::kDiv:
      return x / y;
    case BinaryOp::kMin:
      return std::min(x, y);
    case BinaryOp::kMax:
      return std::max(x, y);
    case BinaryOp::kPow:
      return std::pow(x, y);
    case BinaryOp::kGreater:
      return x > y ? 1.0 : 0.0;
    case BinaryOp::kGreaterEq:
      return x >= y ? 1.0 : 0.0;
    case BinaryOp::kLess:
      return x < y ? 1.0 : 0.0;
    case BinaryOp::kLessEq:
      return x <= y ? 1.0 : 0.0;
    case BinaryOp::kEq:
      return x == y ? 1.0 : 0.0;
    case BinaryOp::kNeq:
      return x != y ? 1.0 : 0.0;
  }
  return 0.0;
}

inline double ApplyUnary(UnaryOp op, double x) {
  switch (op) {
    case UnaryOp::kExp:
      return std::exp(x);
    case UnaryOp::kLog:
      return std::log(x);
    case UnaryOp::kSqrt:
      return std::sqrt(x);
    case UnaryOp::kAbs:
      return std::fabs(x);
    case UnaryOp::kSign:
      return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0);
    case UnaryOp::kRound:
      return std::round(x);
    case UnaryOp::kFloor:
      return std::floor(x);
    case UnaryOp::kCeil:
      return std::ceil(x);
    case UnaryOp::kNeg:
      return -x;
    case UnaryOp::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return 0.0;
}

/// Dense matrix multiply: (m x k) * (k x n) -> (m x n).
MatrixPtr MatMult(const MatrixBlock& a, const MatrixBlock& b);

MatrixPtr Transpose(const MatrixBlock& a);

/// Elementwise binary with SystemDS-style broadcasting: `b` may match `a`,
/// be a column vector (one value per row of `a`), a row vector (one value per
/// column), or a 1x1 scalar.
MatrixPtr Binary(BinaryOp op, const MatrixBlock& a, const MatrixBlock& b);

/// Matrix-scalar variant; `scalar_left` computes (scalar op a).
MatrixPtr ScalarOp(BinaryOp op, const MatrixBlock& a, double scalar,
                   bool scalar_left = false);

MatrixPtr Unary(UnaryOp op, const MatrixBlock& a);

// Full aggregations (return scalars).
double Sum(const MatrixBlock& a);
double Mean(const MatrixBlock& a);
double Min(const MatrixBlock& a);
double Max(const MatrixBlock& a);

// Row/column aggregations (return vectors as 1xN / Nx1 matrices).
MatrixPtr ColSums(const MatrixBlock& a);
MatrixPtr ColMeans(const MatrixBlock& a);
MatrixPtr ColMins(const MatrixBlock& a);
MatrixPtr ColMaxs(const MatrixBlock& a);
MatrixPtr ColVars(const MatrixBlock& a);
MatrixPtr RowSums(const MatrixBlock& a);
MatrixPtr RowMeans(const MatrixBlock& a);
MatrixPtr RowMaxs(const MatrixBlock& a);
/// 1-based index of the per-row maximum (SystemDS rowIndexMax).
MatrixPtr RowIndexMax(const MatrixBlock& a);

/// Sub-matrix [row_lo, row_hi) x [col_lo, col_hi), 0-based half-open.
MatrixPtr Slice(const MatrixBlock& a, size_t row_lo, size_t row_hi,
                size_t col_lo, size_t col_hi);

MatrixPtr RBind(const MatrixBlock& a, const MatrixBlock& b);
MatrixPtr CBind(const MatrixBlock& a, const MatrixBlock& b);

/// Solves A x = b for square non-singular A via LU with partial pivoting.
MatrixPtr Solve(const MatrixBlock& a, const MatrixBlock& b);

/// Uniform random matrix in [lo, hi] with the given nonzero density.
MatrixPtr Rand(size_t rows, size_t cols, double lo, double hi,
               double sparsity, uint64_t seed);

/// Standard-normal random matrix.
MatrixPtr RandGaussian(size_t rows, size_t cols, uint64_t seed);

/// Column vector [from, from+incr, ...] up to `to` inclusive.
MatrixPtr Seq(double from, double to, double incr);

/// n x n identity.
MatrixPtr Identity(size_t n);

/// Diagonal matrix from a vector, or diagonal vector from a matrix.
MatrixPtr Diag(const MatrixBlock& a);

/// Approximate FLOP count of an operator, used by the analytic cost model
/// and by the compute-cost term c(o) in the eviction policies.
double MatMultFlops(size_t m, size_t k, size_t n);

}  // namespace memphis::kernels

#endif  // MEMPHIS_MATRIX_KERNELS_H_
