#include "matrix/transform_kernels.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "matrix/kernels.h"

namespace memphis::kernels {

namespace {

/// Collects the non-missing values of column `c`, sorted.
std::vector<double> SortedColumn(const MatrixBlock& a, size_t c) {
  std::vector<double> values;
  values.reserve(a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double v = a.At(r, c);
    if (!IsMissing(v)) values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  return values;
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

bool IsMissing(double v) { return std::isnan(v); }

MatrixPtr ImputeByMean(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t r = 0; r < a.rows(); ++r) {
      const double v = a.At(r, c);
      if (!IsMissing(v)) {
        sum += v;
        ++count;
      }
    }
    const double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
    for (size_t r = 0; r < a.rows(); ++r) {
      const double v = a.At(r, c);
      out->At(r, c) = IsMissing(v) ? mean : v;
    }
  }
  return out;
}

MatrixPtr ImputeByMode(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) {
    std::map<double, size_t> counts;
    for (size_t r = 0; r < a.rows(); ++r) {
      const double v = a.At(r, c);
      if (!IsMissing(v)) ++counts[v];
    }
    double mode = 0.0;
    size_t best = 0;
    for (const auto& [value, count] : counts) {
      if (count > best) {
        best = count;
        mode = value;
      }
    }
    for (size_t r = 0; r < a.rows(); ++r) {
      const double v = a.At(r, c);
      out->At(r, c) = IsMissing(v) ? mode : v;
    }
  }
  return out;
}

MatrixPtr OutlierByIQR(const MatrixBlock& a, double k) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) {
    const std::vector<double> sorted = SortedColumn(a, c);
    const double q1 = Quantile(sorted, 0.25);
    const double q3 = Quantile(sorted, 0.75);
    const double iqr = q3 - q1;
    const double lo = q1 - k * iqr;
    const double hi = q3 + k * iqr;
    for (size_t r = 0; r < a.rows(); ++r) {
      const double v = a.At(r, c);
      out->At(r, c) = IsMissing(v) ? v : std::clamp(v, lo, hi);
    }
  }
  return out;
}

MatrixPtr StandardScale(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) {
    double sum = 0.0, sq = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) {
      const double v = a.At(r, c);
      sum += v;
      sq += v * v;
    }
    const double n = static_cast<double>(a.rows());
    const double mean = sum / n;
    const double var = std::max(0.0, sq / n - mean * mean);
    const double sd = std::sqrt(var);
    for (size_t r = 0; r < a.rows(); ++r) {
      out->At(r, c) = sd > 1e-12 ? (a.At(r, c) - mean) / sd : 0.0;
    }
  }
  return out;
}

MatrixPtr MinMaxScale(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) {
    double lo = a.At(0, c), hi = a.At(0, c);
    for (size_t r = 1; r < a.rows(); ++r) {
      lo = std::min(lo, a.At(r, c));
      hi = std::max(hi, a.At(r, c));
    }
    const double range = hi - lo;
    for (size_t r = 0; r < a.rows(); ++r) {
      out->At(r, c) = range > 1e-12 ? (a.At(r, c) - lo) / range : 0.0;
    }
  }
  return out;
}

MatrixPtr UnderSample(const MatrixBlock& a, const MatrixBlock& labels,
                      uint64_t seed) {
  MEMPHIS_CHECK_MSG(labels.rows() == a.rows() && labels.cols() == 1,
                    "undersample label shape mismatch");
  size_t positives = 0;
  for (size_t r = 0; r < a.rows(); ++r)
    if (labels.At(r, 0) > 0) ++positives;
  const size_t negatives = a.rows() - positives;
  const bool positive_majority = positives > negatives;
  const size_t majority = positive_majority ? positives : negatives;
  const size_t minority = a.rows() - majority;
  if (minority == majority || minority == 0) {
    return std::make_shared<MatrixBlock>(a.rows(), a.cols(),
                                         std::vector<double>(a.values()));
  }
  // Keep all minority rows plus a deterministic sample of the majority.
  Rng rng(seed);
  const double keep_prob =
      static_cast<double>(minority) / static_cast<double>(majority);
  std::vector<double> rows;
  size_t kept = 0;
  for (size_t r = 0; r < a.rows(); ++r) {
    const bool is_majority = (labels.At(r, 0) > 0) == positive_majority;
    if (is_majority && rng.NextDouble() >= keep_prob) continue;
    for (size_t c = 0; c < a.cols(); ++c) rows.push_back(a.At(r, c));
    ++kept;
  }
  return MatrixBlock::Create(kept, a.cols(), std::move(rows));
}

MatrixPtr Pca(const MatrixBlock& a, size_t k) {
  MEMPHIS_CHECK_MSG(k > 0 && k <= a.cols(), "pca: bad component count");
  auto centered = StandardScale(a);
  // Covariance (cols x cols).
  auto centered_t = Transpose(*centered);
  auto cov = MatMult(*centered_t, *centered);
  const double n = static_cast<double>(std::max<size_t>(1, a.rows() - 1));
  auto cov_scaled = ScalarOp(BinaryOp::kDiv, *cov, n);

  // Jacobi eigendecomposition of the symmetric covariance matrix.
  const size_t d = cov_scaled->rows();
  std::vector<double> mat(cov_scaled->data(), cov_scaled->data() + d * d);
  std::vector<double> vecs(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) vecs[i * d + i] = 1.0;
  for (int sweep = 0; sweep < 50; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < d; ++p)
      for (size_t q = p + 1; q < d; ++q) off += mat[p * d + q] * mat[p * d + q];
    if (off < 1e-18) break;
    for (size_t p = 0; p < d; ++p) {
      for (size_t q = p + 1; q < d; ++q) {
        const double apq = mat[p * d + q];
        if (std::fabs(apq) < 1e-15) continue;
        const double app = mat[p * d + p];
        const double aqq = mat[q * d + q];
        const double theta = 0.5 * std::atan2(2.0 * apq, aqq - app);
        const double c = std::cos(theta), s = std::sin(theta);
        for (size_t i = 0; i < d; ++i) {
          const double aip = mat[i * d + p];
          const double aiq = mat[i * d + q];
          mat[i * d + p] = c * aip - s * aiq;
          mat[i * d + q] = s * aip + c * aiq;
        }
        for (size_t j = 0; j < d; ++j) {
          const double apj = mat[p * d + j];
          const double aqj = mat[q * d + j];
          mat[p * d + j] = c * apj - s * aqj;
          mat[q * d + j] = s * apj + c * aqj;
        }
        for (size_t i = 0; i < d; ++i) {
          const double vip = vecs[i * d + p];
          const double viq = vecs[i * d + q];
          vecs[i * d + p] = c * vip - s * viq;
          vecs[i * d + q] = s * vip + c * viq;
        }
      }
    }
  }
  // Sort eigenpairs by descending eigenvalue; take the top k eigenvectors.
  std::vector<std::pair<double, size_t>> eigs(d);
  for (size_t i = 0; i < d; ++i) eigs[i] = {mat[i * d + i], i};
  std::sort(eigs.begin(), eigs.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  auto projection = std::make_shared<MatrixBlock>(d, k, 0.0);
  for (size_t j = 0; j < k; ++j) {
    const size_t src = eigs[j].second;
    // Fix sign for determinism: largest-magnitude entry positive.
    double pivot = 0.0;
    for (size_t i = 0; i < d; ++i)
      if (std::fabs(vecs[i * d + src]) > std::fabs(pivot))
        pivot = vecs[i * d + src];
    const double sign = pivot < 0 ? -1.0 : 1.0;
    for (size_t i = 0; i < d; ++i)
      projection->At(i, j) = sign * vecs[i * d + src];
  }
  return MatMult(*centered, *projection);
}

MatrixPtr Recode(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) {
    std::map<double, double> dictionary;
    double next_code = 1.0;
    for (size_t r = 0; r < a.rows(); ++r) {
      const double v = a.At(r, c);
      auto [it, inserted] = dictionary.try_emplace(v, next_code);
      if (inserted) next_code += 1.0;
      out->At(r, c) = it->second;
    }
  }
  return out;
}

MatrixPtr Bin(const MatrixBlock& a, size_t bins) {
  MEMPHIS_CHECK(bins > 0);
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) {
    double lo = a.At(0, c), hi = a.At(0, c);
    for (size_t r = 1; r < a.rows(); ++r) {
      lo = std::min(lo, a.At(r, c));
      hi = std::max(hi, a.At(r, c));
    }
    const double width = (hi - lo) / static_cast<double>(bins);
    for (size_t r = 0; r < a.rows(); ++r) {
      if (width <= 1e-300) {
        out->At(r, c) = 1.0;
        continue;
      }
      auto bin = static_cast<size_t>((a.At(r, c) - lo) / width);
      out->At(r, c) = static_cast<double>(std::min(bin, bins - 1) + 1);
    }
  }
  return out;
}

MatrixPtr OneHot(const MatrixBlock& a) {
  std::vector<size_t> widths(a.cols());
  size_t total = 0;
  for (size_t c = 0; c < a.cols(); ++c) {
    double max_code = 0.0;
    for (size_t r = 0; r < a.rows(); ++r)
      max_code = std::max(max_code, a.At(r, c));
    widths[c] = static_cast<size_t>(std::max(1.0, max_code));
    total += widths[c];
  }
  auto out = std::make_shared<MatrixBlock>(a.rows(), total, 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    size_t offset = 0;
    for (size_t c = 0; c < a.cols(); ++c) {
      const auto code = static_cast<size_t>(a.At(r, c));
      if (code >= 1 && code <= widths[c]) out->At(r, offset + code - 1) = 1.0;
      offset += widths[c];
    }
  }
  return out;
}

}  // namespace memphis::kernels
