#include "matrix/matrix_block.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/hash.h"
#include "common/status.h"

namespace memphis {

MatrixBlock::MatrixBlock(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

MatrixBlock::MatrixBlock(size_t rows, size_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), values_(std::move(values)) {
  MEMPHIS_CHECK_MSG(values_.size() == rows * cols,
                    "value vector does not match matrix shape");
}

MatrixPtr MatrixBlock::Create(size_t rows, size_t cols, double fill) {
  return std::make_shared<MatrixBlock>(rows, cols, fill);
}

MatrixPtr MatrixBlock::Create(size_t rows, size_t cols,
                              std::vector<double> values) {
  return std::make_shared<MatrixBlock>(rows, cols, std::move(values));
}

double MatrixBlock::AsScalar() const {
  MEMPHIS_CHECK_MSG(rows_ == 1 && cols_ == 1, "AsScalar requires 1x1");
  return values_[0];
}

bool MatrixBlock::ApproxEquals(const MatrixBlock& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    const double diff = std::fabs(values_[i] - other.values_[i]);
    const double scale = std::max(1.0, std::fabs(values_[i]));
    if (diff > tol * scale) return false;
  }
  return true;
}

uint64_t MatrixBlock::ContentHash() const {
  uint64_t hash = HashCombine(HashInt(rows_), HashInt(cols_));
  for (double v : values_) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    hash = HashCombine(hash, bits);
  }
  return hash;
}

std::string MatrixBlock::DebugString(size_t max_rows, size_t max_cols) const {
  std::ostringstream oss;
  oss << rows_ << "x" << cols_ << " [";
  const size_t show_rows = std::min(rows_, max_rows);
  const size_t show_cols = std::min(cols_, max_cols);
  for (size_t r = 0; r < show_rows; ++r) {
    oss << (r == 0 ? "" : "; ");
    for (size_t c = 0; c < show_cols; ++c) {
      oss << (c == 0 ? "" : " ") << At(r, c);
    }
    if (show_cols < cols_) oss << " ...";
  }
  if (show_rows < rows_) oss << "; ...";
  oss << "]";
  return oss.str();
}

}  // namespace memphis
