#include "matrix/nn_kernels.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/status.h"
#include "matrix/kernels.h"

namespace memphis::kernels {

MatrixPtr Relu(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t i = 0; i < a.size(); ++i)
    out->data()[i] = std::max(0.0, a.data()[i]);
  return out;
}

MatrixPtr ReluBackward(const MatrixBlock& pre_activation,
                       const MatrixBlock& upstream) {
  MEMPHIS_CHECK(pre_activation.rows() == upstream.rows() &&
                pre_activation.cols() == upstream.cols());
  auto out = std::make_shared<MatrixBlock>(upstream.rows(), upstream.cols());
  for (size_t i = 0; i < upstream.size(); ++i)
    out->data()[i] = pre_activation.data()[i] > 0 ? upstream.data()[i] : 0.0;
  return out;
}

MatrixPtr Softmax(const MatrixBlock& a) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    double row_max = a.At(r, 0);
    for (size_t c = 1; c < a.cols(); ++c) row_max = std::max(row_max, a.At(r, c));
    double denom = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
      const double e = std::exp(a.At(r, c) - row_max);
      out->At(r, c) = e;
      denom += e;
    }
    for (size_t c = 0; c < a.cols(); ++c) out->At(r, c) /= denom;
  }
  return out;
}

MatrixPtr Dropout(const MatrixBlock& a, double keep_prob, uint64_t seed) {
  MEMPHIS_CHECK_MSG(keep_prob > 0.0 && keep_prob <= 1.0, "bad keep_prob");
  Rng rng(seed);
  auto out = std::make_shared<MatrixBlock>(a.rows(), a.cols(), 0.0);
  const double scale = 1.0 / keep_prob;
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] =
        rng.NextDouble() < keep_prob ? a.data()[i] * scale : 0.0;
  }
  return out;
}

MatrixPtr Affine(const MatrixBlock& x, const MatrixBlock& w,
                 const MatrixBlock& bias) {
  auto product = MatMult(x, w);
  return Binary(BinaryOp::kAdd, *product, bias);
}

MatrixPtr Conv2d(const MatrixBlock& x, const MatrixBlock& filters,
                 const TensorShape& in_shape, size_t kernel_h, size_t kernel_w,
                 size_t pad, size_t stride, TensorShape* out_shape) {
  MEMPHIS_CHECK_MSG(x.cols() == in_shape.Size(), "conv2d input shape mismatch");
  MEMPHIS_CHECK_MSG(
      filters.cols() == in_shape.channels * kernel_h * kernel_w,
      "conv2d filter shape mismatch");
  MEMPHIS_CHECK(stride >= 1);
  const size_t batch = x.rows();
  const size_t num_filters = filters.rows();
  const size_t in_h = in_shape.height, in_w = in_shape.width;
  const size_t out_h = (in_h + 2 * pad - kernel_h) / stride + 1;
  const size_t out_w = (in_w + 2 * pad - kernel_w) / stride + 1;
  if (out_shape != nullptr) {
    *out_shape = TensorShape{num_filters, out_h, out_w};
  }
  auto out =
      std::make_shared<MatrixBlock>(batch, num_filters * out_h * out_w, 0.0);
  for (size_t n = 0; n < batch; ++n) {
    const double* img = x.data() + n * x.cols();
    double* dst = out->data() + n * out->cols();
    for (size_t f = 0; f < num_filters; ++f) {
      const double* filter = filters.data() + f * filters.cols();
      for (size_t oy = 0; oy < out_h; ++oy) {
        for (size_t ox = 0; ox < out_w; ++ox) {
          double acc = 0.0;
          for (size_t c = 0; c < in_shape.channels; ++c) {
            for (size_t ky = 0; ky < kernel_h; ++ky) {
              const long iy =
                  static_cast<long>(oy * stride + ky) - static_cast<long>(pad);
              if (iy < 0 || iy >= static_cast<long>(in_h)) continue;
              for (size_t kx = 0; kx < kernel_w; ++kx) {
                const long ix = static_cast<long>(ox * stride + kx) -
                                static_cast<long>(pad);
                if (ix < 0 || ix >= static_cast<long>(in_w)) continue;
                acc += img[(c * in_h + iy) * in_w + ix] *
                       filter[(c * kernel_h + ky) * kernel_w + kx];
              }
            }
          }
          dst[(f * out_h + oy) * out_w + ox] = acc;
        }
      }
    }
  }
  return out;
}

MatrixPtr MaxPool(const MatrixBlock& x, const TensorShape& in_shape,
                  size_t pool, TensorShape* out_shape) {
  MEMPHIS_CHECK_MSG(x.cols() == in_shape.Size(), "maxpool shape mismatch");
  const size_t out_h = in_shape.height / pool;
  const size_t out_w = in_shape.width / pool;
  MEMPHIS_CHECK_MSG(out_h > 0 && out_w > 0, "maxpool window too large");
  if (out_shape != nullptr) {
    *out_shape = TensorShape{in_shape.channels, out_h, out_w};
  }
  auto out = std::make_shared<MatrixBlock>(
      x.rows(), in_shape.channels * out_h * out_w, 0.0);
  for (size_t n = 0; n < x.rows(); ++n) {
    const double* img = x.data() + n * x.cols();
    double* dst = out->data() + n * out->cols();
    for (size_t c = 0; c < in_shape.channels; ++c) {
      for (size_t oy = 0; oy < out_h; ++oy) {
        for (size_t ox = 0; ox < out_w; ++ox) {
          double best = -1e300;
          for (size_t py = 0; py < pool; ++py) {
            for (size_t px = 0; px < pool; ++px) {
              const size_t iy = oy * pool + py;
              const size_t ix = ox * pool + px;
              best = std::max(
                  best, img[(c * in_shape.height + iy) * in_shape.width + ix]);
            }
          }
          dst[(c * out_h + oy) * out_w + ox] = best;
        }
      }
    }
  }
  return out;
}

double Conv2dFlops(size_t batch, const TensorShape& in_shape,
                   size_t num_filters, size_t kernel_h, size_t kernel_w,
                   size_t pad, size_t stride) {
  const size_t out_h = (in_shape.height + 2 * pad - kernel_h) / stride + 1;
  const size_t out_w = (in_shape.width + 2 * pad - kernel_w) / stride + 1;
  return 2.0 * static_cast<double>(batch) * num_filters * out_h * out_w *
         in_shape.channels * kernel_h * kernel_w;
}

}  // namespace memphis::kernels
