#ifndef MEMPHIS_MATRIX_FUSED_KERNEL_H_
#define MEMPHIS_MATRIX_FUSED_KERNEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "matrix/kernels.h"
#include "matrix/matrix_block.h"

namespace memphis::kernels {

/// Operand of a tile op: either one of the program's external inputs or the
/// register holding an earlier op's per-tile result.
struct TileRef {
  bool external = false;  // true: inputs[index]; false: ops[index]'s register.
  int index = 0;
};

/// How an external input broadcasts against the group's elementwise domain
/// (rows x cols). Mirrors kernels::Binary's broadcasting rules exactly.
enum class TileInput : uint8_t {
  kFull,    // rows x cols, indexed flat.
  kScalar,  // 1x1, one value for every element.
  kRow,     // 1 x cols, one value per column.
  kCol,     // rows x 1, one value per row.
};

enum class TileOpKind : uint8_t { kBinary, kUnary };

/// One elementwise step of a fused group, evaluated per tile into its own
/// register (the data_chunk model: op-at-a-time over a cache-resident tile,
/// never a full-matrix intermediate).
struct TileOp {
  TileOpKind kind = TileOpKind::kBinary;
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kExp;
  TileRef lhs;
  TileRef rhs;  // Binary only.
};

/// Optional terminal reduction folding the group down to a 1x1 scalar.
enum class TileReduce : uint8_t { kNone, kSum, kMean, kMin, kMax };

/// A fused operator group compiled to a per-tile op sequence. `ops` is in
/// topological order; op i writes register i. For elementwise groups the
/// last op's register is the output; reduce groups fold `reduce_input` with
/// the exact chunk structure of kernels::Sum/Min/Max so the result is
/// bitwise identical to the unfused aggregate at every pool size.
struct TileProgram {
  size_t rows = 0;
  size_t cols = 0;                 // Elementwise domain = rows x cols.
  std::vector<TileInput> inputs;   // Broadcast kind per external input.
  std::vector<TileOp> ops;
  TileReduce reduce = TileReduce::kNone;
  TileRef reduce_input;            // Valid when reduce != kNone.

  std::string DebugString() const;
};

/// Executes a TileProgram by streaming tiles through the shared ThreadPool's
/// cache-blocked loop: one pass over memory, per-op registers that stay L2
/// resident, no intermediate materialization. The kernel_executor_t half of
/// the executor/data_chunk split; the per-task register file is the
/// data_chunk half (see fused_kernel.cc).
///
/// Determinism contract: elementwise values are computed by the same
/// ApplyBinary/ApplyUnary calls as the unfused kernels (pure per element),
/// and terminal reductions reproduce kernels::Sum/Mean/Min/Max's serial
/// threshold, kReduceGrain chunk boundaries, and chunk-index partial
/// combination -- results are bitwise identical to unfused execution at any
/// pool size.
class FusedKernelExecutor {
 public:
  explicit FusedKernelExecutor(const TileProgram* program)
      : program_(program) {}

  /// `inputs` must match program->inputs (count and broadcast shapes).
  /// Returns a rows x cols matrix, or 1x1 for reduce programs.
  MatrixPtr Run(const std::vector<MatrixPtr>& inputs) const;

 private:
  const TileProgram* program_;
};

}  // namespace memphis::kernels

#endif  // MEMPHIS_MATRIX_FUSED_KERNEL_H_
