#ifndef MEMPHIS_MATRIX_TRANSFORM_KERNELS_H_
#define MEMPHIS_MATRIX_TRANSFORM_KERNELS_H_

#include <cstdint>

#include "matrix/matrix_block.h"

namespace memphis::kernels {

/// Feature-transformation and cleaning primitives used by the CLEAN and
/// HDROP pipelines (Sections 6.3). All primitives are deterministic given
/// their inputs (plus an explicit seed where sampling is involved), which is
/// what makes them lineage-reusable.

/// NaN marker used for missing values in generated datasets.
bool IsMissing(double v);

/// Replaces missing cells of each column with the column mean (over the
/// non-missing cells). Columns with no observed value become 0.
MatrixPtr ImputeByMean(const MatrixBlock& a);

/// Replaces missing cells with the column mode (most frequent value).
MatrixPtr ImputeByMode(const MatrixBlock& a);

/// Winsorizes outliers outside [Q1 - k*IQR, Q3 + k*IQR] per column
/// (k = 1.5); missing values are passed through untouched.
MatrixPtr OutlierByIQR(const MatrixBlock& a, double k = 1.5);

/// (x - mean) / stddev per column; constant columns map to 0.
MatrixPtr StandardScale(const MatrixBlock& a);

/// (x - min) / (max - min) per column; constant columns map to 0.
MatrixPtr MinMaxScale(const MatrixBlock& a);

/// Balances a binary-labeled dataset by deterministically dropping rows of
/// the majority class. `labels` is an n x 1 vector of {0,1} (or +-1).
MatrixPtr UnderSample(const MatrixBlock& a, const MatrixBlock& labels,
                      uint64_t seed);

/// Projects onto the top-k principal components (covariance + Jacobi
/// eigendecomposition). Deterministic; returns n x k scores.
MatrixPtr Pca(const MatrixBlock& a, size_t k);

/// Dictionary-encodes each column: values are replaced by dense codes
/// 1..#distinct assigned in order of first appearance (SystemDS recode).
MatrixPtr Recode(const MatrixBlock& a);

/// Equi-width binning into `bins` buckets per column -> bucket ids 1..bins.
MatrixPtr Bin(const MatrixBlock& a, size_t bins);

/// One-hot (dummy-code) expansion of an integer-coded matrix; each column c
/// with max code k_c expands into k_c indicator columns.
MatrixPtr OneHot(const MatrixBlock& a);

}  // namespace memphis::kernels

#endif  // MEMPHIS_MATRIX_TRANSFORM_KERNELS_H_
