#ifndef MEMPHIS_MATRIX_MATRIX_BLOCK_H_
#define MEMPHIS_MATRIX_MATRIX_BLOCK_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace memphis {

class MatrixBlock;
using MatrixPtr = std::shared_ptr<const MatrixBlock>;

/// Dense row-major matrix of doubles. The single in-memory data
/// representation of the system: local CP intermediates, Spark partition
/// tiles, and (logically) GPU-resident buffers are all MatrixBlocks.
///
/// Blocks are immutable once published -- every kernel returns a fresh block
/// -- which is what makes lineage-keyed reuse sound: a cached MatrixPtr can
/// be handed to any number of consumers.
class MatrixBlock {
 public:
  MatrixBlock() = default;
  MatrixBlock(size_t rows, size_t cols, double fill = 0.0);
  MatrixBlock(size_t rows, size_t cols, std::vector<double> values);

  static MatrixPtr Create(size_t rows, size_t cols, double fill = 0.0);
  static MatrixPtr Create(size_t rows, size_t cols,
                          std::vector<double> values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// In-memory footprint in bytes (values only; header is negligible).
  size_t SizeInBytes() const { return size() * sizeof(double); }

  double At(size_t r, size_t c) const { return values_[r * cols_ + c]; }
  double& At(size_t r, size_t c) { return values_[r * cols_ + c]; }

  const double* data() const { return values_.data(); }
  double* data() { return values_.data(); }
  const std::vector<double>& values() const { return values_; }

  /// Scalar view of a 1x1 matrix.
  double AsScalar() const;

  /// True iff shapes match and all cells are within `tol`.
  bool ApproxEquals(const MatrixBlock& other, double tol = 1e-9) const;

  /// Content hash (used by tests and by pixel-id based prediction caching).
  uint64_t ContentHash() const;

  std::string DebugString(size_t max_rows = 6, size_t max_cols = 8) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace memphis

#endif  // MEMPHIS_MATRIX_MATRIX_BLOCK_H_
