#include "matrix/fused_kernel.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/util.h"

namespace memphis::kernels {

namespace {

/// Elements per subtile: 4096 doubles = 32 KB per register, so a handful of
/// registers stays L2-resident while streaming.
constexpr size_t kFusedTileElems = 4096;

/// Resolved operand of one tile op for the current subtile: either a dense
/// pointer (external full input or an earlier op's register, both stride-1
/// from the subtile base), a constant (1x1 external), or a broadcast vector
/// indexed through the global element index.
struct Src {
  enum class Mode : uint8_t { kPtr, kConst, kRow, kCol } mode = Mode::kConst;
  const double* p = nullptr;  // kPtr: subtile base; kRow/kCol: vector base.
  double c = 0.0;
  size_t cols = 1;  // kRow/kCol: the program's elementwise width.
};

inline double Load(const Src& s, size_t base, size_t i) {
  switch (s.mode) {
    case Src::Mode::kPtr:
      return s.p[i];
    case Src::Mode::kConst:
      return s.c;
    case Src::Mode::kRow:
      return s.p[(base + i) % s.cols];
    case Src::Mode::kCol:
      return s.p[(base + i) / s.cols];
  }
  return 0.0;
}

/// Per-task register file: one subtile-sized register per op (the data_chunk
/// half of the executor/data_chunk split). Allocated once per task, reused
/// across every subtile the task owns.
struct RegisterFile {
  explicit RegisterFile(size_t num_ops)
      : storage(num_ops * kFusedTileElems) {}
  double* reg(size_t op) { return storage.data() + op * kFusedTileElems; }
  std::vector<double> storage;
};

}  // namespace

std::string TileProgram::DebugString() const {
  std::ostringstream oss;
  oss << rows << "x" << cols << " inputs=" << inputs.size()
      << " ops=" << ops.size();
  switch (reduce) {
    case TileReduce::kNone:
      break;
    case TileReduce::kSum:
      oss << " reduce=sum";
      break;
    case TileReduce::kMean:
      oss << " reduce=mean";
      break;
    case TileReduce::kMin:
      oss << " reduce=min";
      break;
    case TileReduce::kMax:
      oss << " reduce=max";
      break;
  }
  return oss.str();
}

MatrixPtr FusedKernelExecutor::Run(
    const std::vector<MatrixPtr>& inputs) const {
  const TileProgram& prog = *program_;
  const size_t rows = prog.rows;
  const size_t cols = prog.cols;
  const size_t n = rows * cols;
  MEMPHIS_CHECK_MSG(n > 0, "fused group with empty elementwise domain");
  MEMPHIS_CHECK_MSG(inputs.size() == prog.inputs.size(),
                    "fused group input arity mismatch");
  for (size_t i = 0; i < inputs.size(); ++i) {
    MEMPHIS_CHECK_MSG(inputs[i] != nullptr, "fused group missing input");
    const MatrixBlock& in = *inputs[i];
    switch (prog.inputs[i]) {
      case TileInput::kFull:
        MEMPHIS_CHECK_MSG(in.rows() == rows && in.cols() == cols,
                          "fused full input shape mismatch");
        break;
      case TileInput::kScalar:
        MEMPHIS_CHECK_MSG(in.size() == 1, "fused scalar input not 1x1");
        break;
      case TileInput::kRow:
        MEMPHIS_CHECK_MSG(in.rows() == 1 && in.cols() == cols,
                          "fused row-vector input shape mismatch");
        break;
      case TileInput::kCol:
        MEMPHIS_CHECK_MSG(in.rows() == rows && in.cols() == 1,
                          "fused col-vector input shape mismatch");
        break;
    }
  }

  const bool reducing = prog.reduce != TileReduce::kNone;
  const size_t num_ops = prog.ops.size();
  const int root = reducing ? -1 : static_cast<int>(num_ops) - 1;
  MEMPHIS_CHECK_MSG(reducing || num_ops > 0, "elementwise group with no ops");

  // Output: full matrix for elementwise groups; written directly by the root
  // op's inner loop (never staged through a register).
  std::vector<double> out(reducing ? 0 : n);
  double* out_ptr = out.data();

  // Resolves `ref` against this subtile. Externals resolve once per subtile
  // (full inputs advance with the base; broadcast vectors keep their base
  // pointer); register operands point into the task's register file.
  auto resolve = [&](const TileRef& ref, RegisterFile& regs,
                     size_t base) -> Src {
    Src s;
    if (!ref.external) {
      s.mode = Src::Mode::kPtr;
      s.p = regs.reg(static_cast<size_t>(ref.index));
      return s;
    }
    const MatrixBlock& in = *inputs[static_cast<size_t>(ref.index)];
    switch (prog.inputs[static_cast<size_t>(ref.index)]) {
      case TileInput::kFull:
        s.mode = Src::Mode::kPtr;
        s.p = in.data() + base;
        break;
      case TileInput::kScalar:
        s.mode = Src::Mode::kConst;
        s.c = in.data()[0];
        break;
      case TileInput::kRow:
        s.mode = Src::Mode::kRow;
        s.p = in.data();
        s.cols = cols;
        break;
      case TileInput::kCol:
        s.mode = Src::Mode::kCol;
        s.p = in.data();
        s.cols = cols;
        break;
    }
    return s;
  };

  // Evaluates every op of the program over the subtile [base, base + len).
  auto eval_subtile = [&](RegisterFile& regs, size_t base, size_t len) {
    for (size_t j = 0; j < num_ops; ++j) {
      const TileOp& op = prog.ops[j];
      double* dst = (static_cast<int>(j) == root) ? out_ptr + base
                                                  : regs.reg(j);
      if (op.kind == TileOpKind::kUnary) {
        const Src a = resolve(op.lhs, regs, base);
        if (a.mode == Src::Mode::kPtr) {
          for (size_t i = 0; i < len; ++i)
            dst[i] = ApplyUnary(op.unary_op, a.p[i]);
        } else {
          for (size_t i = 0; i < len; ++i)
            dst[i] = ApplyUnary(op.unary_op, Load(a, base, i));
        }
        continue;
      }
      const Src a = resolve(op.lhs, regs, base);
      const Src b = resolve(op.rhs, regs, base);
      const BinaryOp bop = op.binary_op;
      if (a.mode == Src::Mode::kPtr && b.mode == Src::Mode::kPtr) {
        for (size_t i = 0; i < len; ++i)
          dst[i] = ApplyBinary(bop, a.p[i], b.p[i]);
      } else if (a.mode == Src::Mode::kPtr && b.mode == Src::Mode::kConst) {
        for (size_t i = 0; i < len; ++i)
          dst[i] = ApplyBinary(bop, a.p[i], b.c);
      } else if (a.mode == Src::Mode::kConst && b.mode == Src::Mode::kPtr) {
        for (size_t i = 0; i < len; ++i)
          dst[i] = ApplyBinary(bop, a.c, b.p[i]);
      } else {
        for (size_t i = 0; i < len; ++i)
          dst[i] = ApplyBinary(bop, Load(a, base, i), Load(b, base, i));
      }
    }
  };

  // Walks [lo, hi) subtile by subtile, evaluating the op sequence per tile.
  auto run_range = [&](RegisterFile& regs, size_t lo, size_t hi) {
    for (size_t base = lo; base < hi; base += kFusedTileElems) {
      eval_subtile(regs, base, std::min(kFusedTileElems, hi - base));
    }
  };

  if (!reducing) {
    if (n < kParallelElems) {
      RegisterFile regs(num_ops);
      run_range(regs, 0, n);
    } else {
      // Same grain as the unfused elementwise kernels. Chunks write disjoint
      // ranges of `out`, so results are pool-size independent regardless.
      ParallelFor(0, n, kElemGrain, [&](size_t lo, size_t hi) {
        RegisterFile regs(num_ops);
        run_range(regs, lo, hi);
      });
    }
    return MatrixBlock::Create(rows, cols, std::move(out));
  }

  // Terminal reduction. Mirrors kernels::Sum/Min/Max exactly -- same serial
  // threshold, same kReduceGrain chunk boundaries, ascending accumulation
  // within each chunk, partials combined in chunk-index order -- so the
  // scalar is bitwise identical to the unfused aggregate at any pool size.
  const TileReduce red = prog.reduce;
  const bool is_sum = red == TileReduce::kSum || red == TileReduce::kMean;
  // Folds the reduce input over [lo, hi), evaluating subtiles on the way.
  auto reduce_range = [&](RegisterFile& regs, size_t lo, size_t hi) {
    double acc = 0.0;
    bool first = true;
    for (size_t base = lo; base < hi; base += kFusedTileElems) {
      const size_t len = std::min(kFusedTileElems, hi - base);
      eval_subtile(regs, base, len);
      const Src s = resolve(prog.reduce_input, regs, base);
      if (is_sum) {
        for (size_t i = 0; i < len; ++i) acc += Load(s, base, i);
      } else if (red == TileReduce::kMin) {
        for (size_t i = 0; i < len; ++i) {
          const double v = Load(s, base, i);
          acc = first ? v : std::min(acc, v);
          first = false;
        }
      } else {
        for (size_t i = 0; i < len; ++i) {
          const double v = Load(s, base, i);
          acc = first ? v : std::max(acc, v);
          first = false;
        }
      }
    }
    return acc;
  };

  double total;
  if (n < kParallelElems) {
    RegisterFile regs(num_ops);
    total = reduce_range(regs, 0, n);
  } else {
    const size_t num_chunks = CeilDiv(n, kReduceGrain);
    std::vector<double> partials(num_chunks, 0.0);
    ParallelFor(0, n, kReduceGrain, [&](size_t lo, size_t hi) {
      RegisterFile regs(num_ops);
      partials[lo / kReduceGrain] = reduce_range(regs, lo, hi);
    });
    if (is_sum) {
      total = 0.0;
      for (double partial : partials) total += partial;
    } else if (red == TileReduce::kMin) {
      total = *std::min_element(partials.begin(), partials.end());
    } else {
      total = *std::max_element(partials.begin(), partials.end());
    }
  }
  if (red == TileReduce::kMean) total /= static_cast<double>(n);
  return MatrixBlock::Create(1, 1, total);
}

}  // namespace memphis::kernels
