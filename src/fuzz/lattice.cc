#include "fuzz/lattice.h"

#include "common/status.h"
#include "compiler/parser.h"
#include "core/system.h"
#include "lineage/lineage_item.h"
#include "lineage/lineage_serde.h"

namespace memphis::fuzz {

namespace {

ReuseMode ReuseModeFromName(const std::string& name) {
  for (ReuseMode mode :
       {ReuseMode::kNone, ReuseMode::kTraceOnly, ReuseMode::kProbeOnly,
        ReuseMode::kLima, ReuseMode::kHelix, ReuseMode::kMemphis}) {
    if (name == ToString(mode)) return mode;
  }
  throw MemphisError("unknown reuse mode in config JSON: " + name);
}

VerifyMode VerifyModeFromName(const std::string& name) {
  for (VerifyMode mode :
       {VerifyMode::kOff, VerifyMode::kSummary, VerifyMode::kFull}) {
    if (name == ToString(mode)) return mode;
  }
  throw MemphisError("unknown verify mode in config JSON: " + name);
}

/// Arms a kernel fault for the current scope; always disarms on exit so a
/// throwing lattice point cannot poison the next one.
class FaultGuard {
 public:
  explicit FaultGuard(const KernelFault& fault) {
    if (!fault.opcode.empty()) ArmKernelFault(fault);
  }
  ~FaultGuard() { DisarmKernelFault(); }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
};

void CollectOutputVars(const compiler::BlockPtr& block,
                       std::vector<std::string>* names) {
  switch (block->kind()) {
    case compiler::Block::Kind::kBasic: {
      auto* basic = static_cast<compiler::BasicBlock*>(block.get());
      for (const std::string& name : basic->dag().output_names()) {
        bool seen = false;
        for (const std::string& existing : *names) {
          if (existing == name) {
            seen = true;
            break;
          }
        }
        if (!seen) names->push_back(name);
      }
      break;
    }
    case compiler::Block::Kind::kFor: {
      auto* loop = static_cast<compiler::ForBlock*>(block.get());
      for (const compiler::BlockPtr& inner : loop->body) {
        CollectOutputVars(inner, names);
      }
      break;
    }
    case compiler::Block::Kind::kEvict:
      break;
  }
}

}  // namespace

std::vector<std::string> ProgramOutputVars(const std::string& script) {
  compiler::Program program = compiler::ParseProgram(script);
  std::vector<std::string> names;
  for (const compiler::BlockPtr& block : program.blocks) {
    CollectOutputVars(block, &names);
  }
  return names;
}

std::vector<LatticePoint> DefaultLattice() {
  std::vector<LatticePoint> lattice;

  {
    LatticePoint point;  // No reuse machinery at all, single-threaded.
    point.name = "base";
    point.config.reuse_mode = ReuseMode::kNone;
    point.config.cp_threads = 1;
    lattice.push_back(point);
  }
  {
    LatticePoint point;  // Full MEMPHIS; the repeat makes reuse actually hit.
    point.name = "memphis";
    point.config.reuse_mode = ReuseMode::kMemphis;
    point.config.cp_threads = 4;
    point.repeats = 2;
    lattice.push_back(point);
  }
  {
    LatticePoint point;  // Same as "memphis" with operator fusion disabled:
    point.name = "no-fusion";  // the fused/unfused differential axis.
    point.config.reuse_mode = ReuseMode::kMemphis;
    point.config.cp_threads = 4;
    point.config.operator_fusion = false;
    point.repeats = 2;
    lattice.push_back(point);
  }
  {
    LatticePoint point;
    point.name = "lima";
    point.config.reuse_mode = ReuseMode::kLima;
    point.repeats = 2;
    lattice.push_back(point);
  }
  {
    LatticePoint point;
    point.name = "helix";
    point.config.reuse_mode = ReuseMode::kHelix;
    point.repeats = 2;
    lattice.push_back(point);
  }
  {
    LatticePoint point;  // Starved caches: constant eviction under reuse.
    point.name = "tiny-cache";
    point.config.reuse_mode = ReuseMode::kMemphis;
    point.config.mem_scale = 1.0;
    point.config.driver_lineage_cache = 96ull << 10;
    point.config.gpu_memory = 1ull << 20;
    point.repeats = 3;
    lattice.push_back(point);
  }
  {
    LatticePoint point;  // Tiny CP op budget pushes placement onto Spark.
    point.name = "spark-forced";
    point.config.reuse_mode = ReuseMode::kMemphis;
    point.config.mem_scale = 1.0;
    point.config.operation_memory = 32ull << 10;
    point.config.enable_gpu = false;
    point.repeats = 2;
    lattice.push_back(point);
  }
  {
    LatticePoint point;  // Low offload threshold: most dense ops go to GPU.
    point.name = "gpu-eager";
    point.config.reuse_mode = ReuseMode::kMemphis;
    point.config.gpu_offload_min_flops = 1e3;
    point.config.num_gpus = 2;
    point.repeats = 2;
    lattice.push_back(point);
  }
  {
    LatticePoint point;  // Wide pool: shakes out ordering races.
    point.name = "threads-8";
    point.config.reuse_mode = ReuseMode::kMemphis;
    point.config.cp_threads = 8;
    point.repeats = 2;
    lattice.push_back(point);
  }
  {
    LatticePoint point;  // Fabric knobs are inert for single-system runs:
    point.name = "fabric-knobs";  // num_sites/staleness_bound only shape the
    point.config.reuse_mode = ReuseMode::kMemphis;  // serving fabric, so this
    point.config.cp_threads = 4;  // point must be bitwise-identical to
    point.config.num_sites = 4;   // "memphis".
    point.config.staleness_bound = 2;
    point.repeats = 2;
    lattice.push_back(point);
  }
  {
    LatticePoint point;  // Verifier differential axis: the static plan
    point.name = "no-verify";  // verifier must never change results, so a
    point.config.reuse_mode = ReuseMode::kMemphis;  // verifier-off run must
    point.config.cp_threads = 4;  // be bitwise-identical to "memphis".
    point.config.verify_plans = VerifyMode::kOff;
    point.repeats = 2;
    lattice.push_back(point);
  }
  return lattice;
}

std::vector<LatticePoint> SmokeLattice() {
  std::vector<LatticePoint> all = DefaultLattice();
  std::vector<LatticePoint> smoke;
  for (const LatticePoint& point : all) {
    if (point.name == "base" || point.name == "memphis" ||
        point.name == "no-fusion" || point.name == "tiny-cache" ||
        point.name == "spark-forced") {
      smoke.push_back(point);
    }
  }
  return smoke;
}

Json ConfigToJson(const SystemConfig& config) {
  Json json = Json::Object();
  json.Set("mem_scale", Json::Number(config.mem_scale));
  json.Set("driver_memory",
           Json::Number(static_cast<double>(config.driver_memory)));
  json.Set("executor_memory",
           Json::Number(static_cast<double>(config.executor_memory)));
  json.Set("buffer_pool", Json::Number(static_cast<double>(config.buffer_pool)));
  json.Set("operation_memory",
           Json::Number(static_cast<double>(config.operation_memory)));
  json.Set("driver_lineage_cache",
           Json::Number(static_cast<double>(config.driver_lineage_cache)));
  json.Set("gpu_memory", Json::Number(static_cast<double>(config.gpu_memory)));
  json.Set("num_executors", Json::Number(config.num_executors));
  json.Set("cores_per_executor", Json::Number(config.cores_per_executor));
  json.Set("cp_threads", Json::Number(config.cp_threads));
  json.Set("unified_memory_fraction",
           Json::Number(config.unified_memory_fraction));
  json.Set("storage_fraction", Json::Number(config.storage_fraction));
  json.Set("reuse_storage_fraction",
           Json::Number(config.reuse_storage_fraction));
  json.Set("reuse_mode", Json::Str(ToString(config.reuse_mode)));
  json.Set("multi_level_reuse", Json::Bool(config.multi_level_reuse));
  json.Set("compaction", Json::Bool(config.compaction));
  json.Set("delayed_caching", Json::Bool(config.delayed_caching));
  json.Set("default_delay_factor", Json::Number(config.default_delay_factor));
  json.Set("lazy_materialize_after_misses",
           Json::Number(config.lazy_materialize_after_misses));
  json.Set("enable_spark", Json::Bool(config.enable_spark));
  json.Set("enable_gpu", Json::Bool(config.enable_gpu));
  json.Set("gpu_offload_min_flops", Json::Number(config.gpu_offload_min_flops));
  json.Set("async_operators", Json::Bool(config.async_operators));
  json.Set("eviction_injection", Json::Bool(config.eviction_injection));
  json.Set("checkpoint_placement", Json::Bool(config.checkpoint_placement));
  json.Set("max_parallelize", Json::Bool(config.max_parallelize));
  json.Set("operator_fusion", Json::Bool(config.operator_fusion));
  json.Set("verify_plans", Json::Str(ToString(config.verify_plans)));
  json.Set("auto_parameter_tuning", Json::Bool(config.auto_parameter_tuning));
  json.Set("spark_job_lanes", Json::Number(config.spark_job_lanes));
  json.Set("spark_eager_caching", Json::Bool(config.spark_eager_caching));
  json.Set("num_gpus", Json::Number(config.num_gpus));
  json.Set("gpu_recycling", Json::Bool(config.gpu_recycling));
  json.Set("gpu_eager_free", Json::Bool(config.gpu_eager_free));
  json.Set("persist_dir", Json::Str(config.persist_dir));
  json.Set("persist_budget_bytes",
           Json::Number(static_cast<double>(config.persist_budget_bytes)));
  json.Set("persist_segment_bytes",
           Json::Number(static_cast<double>(config.persist_segment_bytes)));
  json.Set("persist_compact_dead_ratio",
           Json::Number(config.persist_compact_dead_ratio));
  json.Set("persist_min_compute_cost",
           Json::Number(config.persist_min_compute_cost));
  json.Set("persist_harvest_interval_ms",
           Json::Number(config.persist_harvest_interval_ms));
  json.Set("num_sites", Json::Number(config.num_sites));
  json.Set("staleness_bound", Json::Number(config.staleness_bound));
  return json;
}

SystemConfig ConfigFromJson(const Json& json) {
  SystemConfig config;  // Missing keys keep their defaults.
  config.mem_scale = json.GetOr("mem_scale", config.mem_scale);
  auto bytes = [&](const char* key, size_t fallback) {
    return static_cast<size_t>(
        json.GetOr(key, static_cast<double>(fallback)));
  };
  config.driver_memory = bytes("driver_memory", config.driver_memory);
  config.executor_memory = bytes("executor_memory", config.executor_memory);
  config.buffer_pool = bytes("buffer_pool", config.buffer_pool);
  config.operation_memory = bytes("operation_memory", config.operation_memory);
  config.driver_lineage_cache =
      bytes("driver_lineage_cache", config.driver_lineage_cache);
  config.gpu_memory = bytes("gpu_memory", config.gpu_memory);
  config.num_executors = static_cast<int>(
      json.GetOr("num_executors", static_cast<double>(config.num_executors)));
  config.cores_per_executor = static_cast<int>(json.GetOr(
      "cores_per_executor", static_cast<double>(config.cores_per_executor)));
  config.cp_threads = static_cast<int>(
      json.GetOr("cp_threads", static_cast<double>(config.cp_threads)));
  config.unified_memory_fraction =
      json.GetOr("unified_memory_fraction", config.unified_memory_fraction);
  config.storage_fraction =
      json.GetOr("storage_fraction", config.storage_fraction);
  config.reuse_storage_fraction =
      json.GetOr("reuse_storage_fraction", config.reuse_storage_fraction);
  config.reuse_mode = ReuseModeFromName(
      json.GetOr("reuse_mode", std::string(ToString(config.reuse_mode))));
  config.multi_level_reuse =
      json.GetOr("multi_level_reuse", config.multi_level_reuse);
  config.compaction = json.GetOr("compaction", config.compaction);
  config.delayed_caching = json.GetOr("delayed_caching", config.delayed_caching);
  config.default_delay_factor = static_cast<int>(json.GetOr(
      "default_delay_factor", static_cast<double>(config.default_delay_factor)));
  config.lazy_materialize_after_misses = static_cast<int>(
      json.GetOr("lazy_materialize_after_misses",
                 static_cast<double>(config.lazy_materialize_after_misses)));
  config.enable_spark = json.GetOr("enable_spark", config.enable_spark);
  config.enable_gpu = json.GetOr("enable_gpu", config.enable_gpu);
  config.gpu_offload_min_flops =
      json.GetOr("gpu_offload_min_flops", config.gpu_offload_min_flops);
  config.async_operators = json.GetOr("async_operators", config.async_operators);
  config.eviction_injection =
      json.GetOr("eviction_injection", config.eviction_injection);
  config.checkpoint_placement =
      json.GetOr("checkpoint_placement", config.checkpoint_placement);
  config.max_parallelize = json.GetOr("max_parallelize", config.max_parallelize);
  config.operator_fusion = json.GetOr("operator_fusion", config.operator_fusion);
  config.verify_plans = VerifyModeFromName(
      json.GetOr("verify_plans", std::string(ToString(config.verify_plans))));
  config.auto_parameter_tuning =
      json.GetOr("auto_parameter_tuning", config.auto_parameter_tuning);
  config.spark_job_lanes = static_cast<int>(json.GetOr(
      "spark_job_lanes", static_cast<double>(config.spark_job_lanes)));
  config.spark_eager_caching =
      json.GetOr("spark_eager_caching", config.spark_eager_caching);
  config.num_gpus = static_cast<int>(
      json.GetOr("num_gpus", static_cast<double>(config.num_gpus)));
  config.gpu_recycling = json.GetOr("gpu_recycling", config.gpu_recycling);
  config.gpu_eager_free = json.GetOr("gpu_eager_free", config.gpu_eager_free);
  config.persist_dir = json.GetOr("persist_dir", config.persist_dir);
  config.persist_budget_bytes =
      bytes("persist_budget_bytes", config.persist_budget_bytes);
  config.persist_segment_bytes =
      bytes("persist_segment_bytes", config.persist_segment_bytes);
  config.persist_compact_dead_ratio = json.GetOr(
      "persist_compact_dead_ratio", config.persist_compact_dead_ratio);
  config.persist_min_compute_cost =
      json.GetOr("persist_min_compute_cost", config.persist_min_compute_cost);
  config.persist_harvest_interval_ms = json.GetOr(
      "persist_harvest_interval_ms", config.persist_harvest_interval_ms);
  config.num_sites = static_cast<int>(
      json.GetOr("num_sites", static_cast<double>(config.num_sites)));
  config.staleness_bound = static_cast<int>(json.GetOr(
      "staleness_bound", static_cast<double>(config.staleness_bound)));
  return config;
}

Json PointToJson(const LatticePoint& point) {
  Json json = Json::Object();
  json.Set("name", Json::Str(point.name));
  json.Set("repeats", Json::Number(point.repeats));
  json.Set("config", ConfigToJson(point.config));
  if (!point.fault.opcode.empty()) {
    Json fault = Json::Object();
    fault.Set("opcode", Json::Str(point.fault.opcode));
    fault.Set("relative_error", Json::Number(point.fault.relative_error));
    fault.Set("skip_calls", Json::Number(point.fault.skip_calls));
    json.Set("fault", fault);
  }
  return json;
}

LatticePoint PointFromJson(const Json& json) {
  LatticePoint point;
  point.name = json.GetOr("name", std::string("replay"));
  point.repeats =
      static_cast<int>(json.GetOr("repeats", static_cast<double>(1)));
  point.config = ConfigFromJson(json.Get("config"));
  if (json.Has("fault")) {
    const Json& fault = json.Get("fault");
    point.fault.opcode = fault.Get("opcode").as_string();
    point.fault.relative_error =
        fault.GetOr("relative_error", point.fault.relative_error);
    point.fault.skip_calls = static_cast<int>(
        fault.GetOr("skip_calls", static_cast<double>(point.fault.skip_calls)));
  }
  return point;
}

PointResult RunUnderPoint(const GeneratedProgram& program,
                          const LatticePoint& point) {
  const std::string script = program.Script();
  compiler::Program parsed = compiler::ParseProgram(script);

  MemphisSystem system(point.config);
  for (const InputSpec& spec : program.inputs) {
    system.ctx().BindMatrixWithId(
        spec.name, MakeInput(spec),
        "fuzz:" + spec.name + ":" + std::to_string(spec.seed));
  }

  {
    FaultGuard guard(point.fault);
    // Repeats run the *same* Program object: iteration 2+ is where lineage
    // reuse, delayed caching, and eviction actually engage.
    for (int repeat = 0; repeat < point.repeats; ++repeat) {
      system.Run(parsed);
    }
  }

  PointResult result;
  for (const std::string& name : ProgramOutputVars(script)) {
    result.outputs[name] = system.ctx().FetchMatrix(name);
  }

  // Structural checks ride along on every point: a divergence-free run that
  // corrupts cache accounting or lineage serialization is still a bug.
  const std::string cache_error = system.ctx().cache().CheckInvariants();
  if (!cache_error.empty()) {
    result.structural_error = "cache invariant violated: " + cache_error;
    return result;
  }
  for (const auto& [name, value] : result.outputs) {
    (void)value;
    LineageItemPtr item = system.ctx().lineage().Get(name);
    if (item == nullptr) continue;  // Tracing disabled at this point.
    const std::string serialized = SerializeLineage(item);
    LineageItemPtr decoded = DeserializeLineage(serialized);
    if (decoded == nullptr || !LineageEquals(item, decoded)) {
      result.structural_error =
          "lineage serde round-trip mismatch for '" + name + "'";
      return result;
    }
    if (SerializeLineage(decoded) != serialized) {
      result.structural_error =
          "lineage serialization is not a fixpoint for '" + name + "'";
      return result;
    }
  }
  return result;
}

}  // namespace memphis::fuzz
