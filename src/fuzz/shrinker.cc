#include "fuzz/shrinker.h"

#include "fuzz/fuzzer.h"

namespace memphis::fuzz {

namespace {

bool StillDiverges(const GeneratedProgram& program, const LatticePoint& point,
                   const Tolerance& tol) {
  return ClassifyPoint(program, point, tol, nullptr) ==
         PointVerdict::kDiverge;
}

void PruneUnusedInputs(GeneratedProgram* program) {
  std::vector<InputSpec> kept;
  for (const InputSpec& spec : program->inputs) {
    bool used = false;
    for (const FuzzStatement& statement : program->statements) {
      for (const std::string& use : statement.uses) {
        if (use == spec.name) {
          used = true;
          break;
        }
      }
      if (used) break;
    }
    if (used) kept.push_back(spec);
  }
  program->inputs = std::move(kept);
}

}  // namespace

GeneratedProgram ShrinkProgram(const GeneratedProgram& program,
                               const LatticePoint& point,
                               const Tolerance& tol) {
  // Replayed corpus programs carry only raw text -- nothing to shrink.
  if (program.statements.empty()) return program;

  GeneratedProgram current = program;
  current.raw_script.clear();  // Script() must follow the statement list.

  bool changed = true;
  while (changed) {
    changed = false;

    // Move 1: delete statements, last-to-first (later statements have fewer
    // dependents, so deletions succeed more often and shrink the candidate
    // space for earlier ones).
    for (size_t i = current.statements.size(); i-- > 0;) {
      GeneratedProgram candidate = current;
      candidate.statements.erase(candidate.statements.begin() +
                                 static_cast<ptrdiff_t>(i));
      if (candidate.statements.empty()) continue;
      if (StillDiverges(candidate, point, tol)) {
        current = std::move(candidate);
        changed = true;
      }
    }

    // Move 2: replace a statement's right-hand side with a same-shape
    // operand, turning `v = op(a, b);` into `v = a;`. Downstream readers
    // stay valid, so this deletes the operation even when the target is
    // still consumed.
    for (size_t i = 0; i < current.statements.size(); ++i) {
      const FuzzStatement& statement = current.statements[i];
      if (statement.targets.empty()) continue;
      for (const std::string& alias : statement.aliases) {
        if (statement.text ==
            statement.targets.front() + " = " + alias + ";") {
          continue;  // Already an alias assignment.
        }
        GeneratedProgram candidate = current;
        FuzzStatement& mutated = candidate.statements[i];
        mutated.text = mutated.targets.front() + " = " + alias + ";";
        mutated.uses = {alias};
        mutated.aliases.clear();
        if (StillDiverges(candidate, point, tol)) {
          current = std::move(candidate);
          changed = true;
          break;
        }
      }
    }
  }

  PruneUnusedInputs(&current);
  return current;
}

}  // namespace memphis::fuzz
