#ifndef MEMPHIS_FUZZ_SHRINKER_H_
#define MEMPHIS_FUZZ_SHRINKER_H_

#include "common/tolerance.h"
#include "fuzz/generator.h"
#include "fuzz/lattice.h"

namespace memphis::fuzz {

/// Delta-debugging minimizer for a diverging program. Two moves, applied to
/// a fixpoint:
///
///  * statement deletion: drop one statement and re-verify; candidates the
///    oracle rejects (a later statement now reads an unbound variable) are
///    invalid and the statement is kept;
///  * operand aliasing: replace a statement's whole right-hand side with one
///    of its same-shape operands (`v7 = tsmm(v3) * 0.01;` -> `v7 = v3;`),
///    which keeps every downstream reader valid while deleting the op.
///
/// Unused inputs are pruned at the end. The returned program is guaranteed
/// to still diverge under `point` (the original is returned unchanged if no
/// smaller diverging program is found).
GeneratedProgram ShrinkProgram(const GeneratedProgram& program,
                               const LatticePoint& point,
                               const Tolerance& tol);

}  // namespace memphis::fuzz

#endif  // MEMPHIS_FUZZ_SHRINKER_H_
