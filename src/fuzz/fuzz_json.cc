#include "fuzz/fuzz_json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/status.h"

namespace memphis::fuzz {

Json Json::Bool(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_ = value;
  return json;
}

Json Json::Number(double value) {
  Json json;
  json.kind_ = Kind::kNumber;
  json.number_ = value;
  return json;
}

Json Json::Str(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::Array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::Object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

bool Json::as_bool() const {
  MEMPHIS_CHECK_MSG(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  MEMPHIS_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& Json::as_string() const {
  MEMPHIS_CHECK_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

Json& Json::Set(const std::string& key, Json value) {
  MEMPHIS_CHECK_MSG(kind_ == Kind::kObject, "JSON Set on a non-object");
  object_[key] = std::move(value);
  return *this;
}

const Json& Json::Get(const std::string& key) const {
  MEMPHIS_CHECK_MSG(kind_ == Kind::kObject, "JSON Get on a non-object");
  auto it = object_.find(key);
  MEMPHIS_CHECK_MSG(it != object_.end(), "missing JSON key: " + key);
  return it->second;
}

bool Json::Has(const std::string& key) const {
  return kind_ == Kind::kObject && object_.find(key) != object_.end();
}

double Json::GetOr(const std::string& key, double fallback) const {
  return Has(key) ? Get(key).as_number() : fallback;
}

bool Json::GetOr(const std::string& key, bool fallback) const {
  return Has(key) ? Get(key).as_bool() : fallback;
}

std::string Json::GetOr(const std::string& key,
                        const std::string& fallback) const {
  return Has(key) ? Get(key).as_string() : fallback;
}

void Json::Append(Json value) {
  MEMPHIS_CHECK_MSG(kind_ == Kind::kArray, "JSON Append on a non-array");
  array_.push_back(std::move(value));
}

namespace {

void EscapeTo(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

void NumberTo(double value, std::string* out) {
  // Integers print without a fraction; everything else round-trips exactly
  // through %.17g (shortest form is not needed, stability is).
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    *out += buffer;
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent) const {
  const std::string pad(indent * 2, ' ');
  const std::string inner_pad((indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: *out += "null"; break;
    case Kind::kBool: *out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: NumberTo(number_, out); break;
    case Kind::kString: EscapeTo(string_, out); break;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += inner_pad;
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      size_t i = 0;
      for (const auto& [key, value] : object_) {
        *out += inner_pad;
        EscapeTo(key, out);
        *out += ": ";
        value.DumpTo(out, indent + 1);
        if (++i < object_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out += "\n";
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json Parse() {
    Json value = ParseValue();
    SkipSpace();
    MEMPHIS_CHECK_MSG(position_ >= text_.size(), "trailing JSON input");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) {
    throw MemphisError("JSON parse error at offset " +
                       std::to_string(position_) + ": " + message);
  }

  void SkipSpace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  char Peek() {
    SkipSpace();
    if (position_ >= text_.size()) Fail("unexpected end of input");
    return text_[position_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++position_;
  }

  bool Consume(char c) {
    if (position_ < text_.size() && Peek() == c) {
      ++position_;
      return true;
    }
    return false;
  }

  Json ParseValue() {
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return Json::Str(ParseString());
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      ExpectWord("null");
      return Json();
    }
    return ParseNumber();
  }

  void ExpectWord(const std::string& word) {
    SkipSpace();
    if (text_.compare(position_, word.size(), word) != 0) {
      Fail("expected '" + word + "'");
    }
    position_ += word.size();
  }

  Json ParseBool() {
    if (Peek() == 't') {
      ExpectWord("true");
      return Json::Bool(true);
    }
    ExpectWord("false");
    return Json::Bool(false);
  }

  Json ParseNumber() {
    SkipSpace();
    size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(text_.substr(position_), &consumed);
    } catch (const std::exception&) {
      Fail("malformed number");
    }
    position_ += consumed;
    return Json::Number(value);
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (position_ < text_.size() && text_[position_] != '"') {
      char c = text_[position_++];
      if (c == '\\') {
        if (position_ >= text_.size()) Fail("unterminated escape");
        const char escape = text_[position_++];
        switch (escape) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case '/': out.push_back('/'); break;
          default: Fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
    if (position_ >= text_.size()) Fail("unterminated string");
    ++position_;  // Closing quote.
    return out;
  }

  Json ParseArray() {
    Expect('[');
    Json array = Json::Array();
    if (Consume(']')) return array;
    while (true) {
      array.Append(ParseValue());
      if (Consume(']')) return array;
      Expect(',');
    }
  }

  Json ParseObject() {
    Expect('{');
    Json object = Json::Object();
    if (Consume('}')) return object;
    while (true) {
      const std::string key = ParseString();
      Expect(':');
      object.Set(key, ParseValue());
      if (Consume('}')) return object;
      Expect(',');
    }
  }

  const std::string& text_;
  size_t position_ = 0;
};

}  // namespace

Json Json::Parse(const std::string& text) { return JsonParser(text).Parse(); }

}  // namespace memphis::fuzz
