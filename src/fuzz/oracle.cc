#include "fuzz/oracle.h"

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "compiler/op_registry.h"

namespace memphis::fuzz {

namespace {

using compiler::Hop;
using compiler::HopPtr;

MatrixPtr Eval(const HopPtr& hop, const OracleEnv& env,
               std::unordered_map<const Hop*, MatrixPtr>* memo) {
  auto it = memo->find(hop.get());
  if (it != memo->end()) return it->second;

  MatrixPtr result;
  if (hop->opcode() == "read") {
    auto var = env.find(hop->var_name());
    if (var == env.end()) {
      throw MemphisError("oracle: read of unbound variable '" +
                         hop->var_name() + "'");
    }
    result = var->second;
  } else if (hop->opcode() == "literal") {
    result = MatrixBlock::Create(1, 1, hop->args().at(0));
  } else {
    const compiler::OpSpec* spec = compiler::FindOp(hop->opcode());
    if (spec == nullptr || !spec->exec) {
      throw MemphisError("oracle: no reference kernel for opcode '" +
                         hop->opcode() + "'");
    }
    std::vector<MatrixPtr> inputs;
    inputs.reserve(hop->inputs().size());
    for (const HopPtr& input : hop->inputs()) {
      inputs.push_back(Eval(input, env, memo));
    }
    result = spec->exec(inputs, hop->args());
  }
  (*memo)[hop.get()] = result;
  return result;
}

void RunBlock(const compiler::BlockPtr& block, OracleEnv* env) {
  switch (block->kind()) {
    case compiler::Block::Kind::kBasic: {
      auto* basic = static_cast<compiler::BasicBlock*>(block.get());
      const compiler::HopDag& dag = basic->dag();
      std::unordered_map<const Hop*, MatrixPtr> memo;
      // Evaluate all outputs against the *pre-block* environment, then bind
      // -- matching the executor, which reads runtime vars at block entry.
      std::vector<MatrixPtr> results;
      results.reserve(dag.outputs().size());
      for (const HopPtr& output : dag.outputs()) {
        results.push_back(Eval(output, *env, &memo));
      }
      for (size_t i = 0; i < results.size(); ++i) {
        (*env)[dag.output_names()[i]] = results[i];
      }
      break;
    }
    case compiler::Block::Kind::kFor: {
      auto* loop = static_cast<compiler::ForBlock*>(block.get());
      for (double value : loop->values) {
        (*env)[loop->loop_var] = MatrixBlock::Create(1, 1, value);
        for (const compiler::BlockPtr& inner : loop->body) {
          RunBlock(inner, env);
        }
      }
      break;
    }
    case compiler::Block::Kind::kEvict:
      break;  // Cache directive; no dataflow effect.
  }
}

}  // namespace

void OracleRun(const compiler::Program& program, OracleEnv* env) {
  for (const compiler::BlockPtr& block : program.blocks) {
    RunBlock(block, env);
  }
}

}  // namespace memphis::fuzz
