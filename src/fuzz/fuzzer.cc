#include "fuzz/fuzzer.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/status.h"
#include "compiler/parser.h"
#include "fuzz/oracle.h"
#include "fuzz/shrinker.h"
#include "obs/flight.h"

namespace memphis::fuzz {

namespace {

/// Reference outputs for a program: oracle environment after evaluation.
/// Throws MemphisError when the program itself is malformed.
OracleEnv OracleOutputs(const GeneratedProgram& program) {
  OracleEnv env;
  for (const InputSpec& spec : program.inputs) {
    env[spec.name] = MakeInput(spec);
  }
  compiler::Program parsed = compiler::ParseProgram(program.Script());
  OracleRun(parsed, &env);
  return env;
}

bool MatricesClose(const MatrixBlock& a, const MatrixBlock& b,
                   const Tolerance& tol, std::string* detail) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    std::ostringstream oss;
    oss << "shape " << a.rows() << "x" << a.cols() << " vs " << b.rows()
        << "x" << b.cols();
    *detail = oss.str();
    return false;
  }
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      if (!Close(a.At(r, c), b.At(r, c), tol)) {
        std::ostringstream oss;
        oss.precision(17);
        oss << "cell (" << r << "," << c << "): oracle " << a.At(r, c)
            << " vs system " << b.At(r, c);
        *detail = oss.str();
        return false;
      }
    }
  }
  return true;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw MemphisError("cannot open file: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw MemphisError("cannot write file: " + path);
  out << content;
}

}  // namespace

PointVerdict ClassifyPoint(const GeneratedProgram& program,
                           const LatticePoint& point, const Tolerance& tol,
                           DivergenceInfo* info) {
  OracleEnv oracle;
  try {
    oracle = OracleOutputs(program);
  } catch (const MemphisError&) {
    return PointVerdict::kInvalid;
  }

  PointResult compiled;
  try {
    compiled = RunUnderPoint(program, point);
  } catch (const MemphisError& error) {
    // The oracle accepted the program, so a system-side failure is a
    // finding (planner/runtime crash), not a malformed program.
    if (info != nullptr) {
      info->point_name = point.name;
      info->variable.clear();
      info->compiled_hash = 0;
      info->detail = std::string("system error: ") + error.what();
    }
    return PointVerdict::kDiverge;
  }

  if (!compiled.structural_error.empty()) {
    if (info != nullptr) {
      info->point_name = point.name;
      info->variable.clear();
      info->compiled_hash = 0;
      info->detail = compiled.structural_error;
    }
    return PointVerdict::kDiverge;
  }

  for (const auto& [name, value] : compiled.outputs) {
    auto expected = oracle.find(name);
    if (expected == oracle.end()) continue;  // Loop vars etc.
    std::string detail;
    if (value == nullptr) {
      detail = "system produced no value";
    } else if (MatricesClose(*expected->second, *value, tol, &detail)) {
      continue;
    }
    if (info != nullptr) {
      info->point_name = point.name;
      info->variable = name;
      info->compiled_hash = value == nullptr ? 0 : value->ContentHash();
      info->detail = "output '" + name + "' " + detail;
    }
    return PointVerdict::kDiverge;
  }
  return PointVerdict::kAgree;
}

PointVerdict ClassifyProgram(const GeneratedProgram& program,
                             const std::vector<LatticePoint>& lattice,
                             const Tolerance& tol, DivergenceInfo* info) {
  for (const LatticePoint& point : lattice) {
    const PointVerdict verdict = ClassifyPoint(program, point, tol, info);
    if (verdict != PointVerdict::kAgree) return verdict;
  }
  return PointVerdict::kAgree;
}

std::string WriteRepro(const Repro& repro, const std::string& dir,
                       const std::string& stem) {
  std::filesystem::create_directories(dir);
  const std::string base = (std::filesystem::path(dir) / stem).string();

  WriteFile(base + ".dml", repro.program.Script());

  Json json = Json::Object();
  json.Set("seed", Json::Number(static_cast<double>(repro.program.seed)));
  Json inputs = Json::Array();
  for (const InputSpec& spec : repro.program.inputs) {
    Json input = Json::Object();
    input.Set("name", Json::Str(spec.name));
    input.Set("rows", Json::Number(static_cast<double>(spec.rows)));
    input.Set("cols", Json::Number(static_cast<double>(spec.cols)));
    input.Set("lo", Json::Number(spec.lo));
    input.Set("hi", Json::Number(spec.hi));
    input.Set("sparsity", Json::Number(spec.sparsity));
    input.Set("input_seed", Json::Number(static_cast<double>(spec.seed)));
    inputs.Append(input);
  }
  json.Set("inputs", inputs);
  json.Set("point", PointToJson(repro.point));
  Json tolerance = Json::Object();
  tolerance.Set("abs", Json::Number(repro.tolerance.abs));
  tolerance.Set("rel", Json::Number(repro.tolerance.rel));
  tolerance.Set("ulps", Json::Number(repro.tolerance.ulps));
  json.Set("tolerance", tolerance);
  json.Set("variable", Json::Str(repro.variable));
  // uint64 does not survive a double round-trip; keep it textual.
  json.Set("expected_hash", Json::Str(std::to_string(repro.expected_hash)));
  json.Set("detail", Json::Str(repro.detail));
  WriteFile(base + ".json", json.Dump());
  return base;
}

Repro LoadRepro(const std::string& script_path,
                const std::string& config_path) {
  Repro repro;
  repro.program.raw_script = ReadFile(script_path);
  const Json json = Json::Parse(ReadFile(config_path));
  repro.program.seed =
      static_cast<uint64_t>(json.GetOr("seed", static_cast<double>(0)));
  if (json.Has("inputs")) {
    const Json& inputs = json.Get("inputs");
    for (size_t i = 0; i < inputs.size(); ++i) {
      const Json& input = inputs.at(i);
      InputSpec spec;
      spec.name = input.Get("name").as_string();
      spec.rows = static_cast<size_t>(input.Get("rows").as_number());
      spec.cols = static_cast<size_t>(input.Get("cols").as_number());
      spec.lo = input.GetOr("lo", spec.lo);
      spec.hi = input.GetOr("hi", spec.hi);
      spec.sparsity = input.GetOr("sparsity", spec.sparsity);
      spec.seed = static_cast<uint64_t>(
          input.GetOr("input_seed", static_cast<double>(spec.seed)));
      repro.program.inputs.push_back(spec);
    }
  }
  repro.point = PointFromJson(json.Get("point"));
  if (json.Has("tolerance")) {
    const Json& tolerance = json.Get("tolerance");
    repro.tolerance.abs = tolerance.GetOr("abs", repro.tolerance.abs);
    repro.tolerance.rel = tolerance.GetOr("rel", repro.tolerance.rel);
    repro.tolerance.ulps = static_cast<int>(
        tolerance.GetOr("ulps", static_cast<double>(repro.tolerance.ulps)));
  }
  repro.variable = json.GetOr("variable", std::string());
  repro.expected_hash = std::stoull(
      json.GetOr("expected_hash", std::string("0")));
  repro.detail = json.GetOr("detail", std::string());
  return repro;
}

ReplayOutcome ReplayRepro(const Repro& repro) {
  ReplayOutcome outcome;
  DivergenceInfo info;
  const PointVerdict verdict =
      ClassifyPoint(repro.program, repro.point, repro.tolerance, &info);
  if (verdict == PointVerdict::kInvalid) {
    outcome.detail = "repro script is rejected by the oracle";
    return outcome;
  }
  if (verdict == PointVerdict::kAgree) {
    outcome.detail = "no divergence on replay";
    return outcome;
  }
  outcome.diverged = true;
  outcome.detail = info.detail;
  outcome.hash_match = !repro.variable.empty() &&
                       info.variable == repro.variable &&
                       info.compiled_hash == repro.expected_hash;
  return outcome;
}

CampaignResult RunCampaign(const CampaignOptions& options) {
  CampaignResult result;
  const auto log = [&](const std::string& message) {
    if (options.log) options.log(message);
  };
  const std::vector<LatticePoint> lattice =
      options.lattice.empty() ? DefaultLattice() : options.lattice;

  for (int run = 0; run < options.runs; ++run) {
    const uint64_t seed = options.seed + static_cast<uint64_t>(run);
    GeneratedProgram program = GenerateProgram(seed, options.generator);
    ++result.runs;

    DivergenceInfo info;
    const PointVerdict verdict =
        ClassifyProgram(program, lattice, options.tolerance, &info);
    if (verdict == PointVerdict::kInvalid) {
      // A generator bug, not a system bug -- surface it loudly.
      log("seed " + std::to_string(seed) +
          ": generator emitted an oracle-invalid program");
      continue;
    }
    if (verdict == PointVerdict::kAgree) continue;

    ++result.divergences;
    log("seed " + std::to_string(seed) + " DIVERGED at point '" +
        info.point_name + "': " + info.detail);
    // Post-mortem evidence before shrinking mutates any state: the flight
    // recorder (when armed) captures the trace/journal tail of the run that
    // just diverged.
    obs::DumpFlightRecord("fuzz-divergence");

    // Pin the diverging point for shrinking and replay.
    const LatticePoint* point = nullptr;
    for (const LatticePoint& candidate : lattice) {
      if (candidate.name == info.point_name) point = &candidate;
    }
    if (point == nullptr) continue;

    GeneratedProgram minimal = program;
    if (options.shrink) {
      minimal = ShrinkProgram(program, *point, options.tolerance);
      log("  shrunk " + std::to_string(program.statements.size()) + " -> " +
          std::to_string(minimal.statements.size()) + " statements");
      // Re-classify the minimal program so the recorded signature matches
      // what the repro will reproduce.
      DivergenceInfo shrunk_info;
      if (ClassifyPoint(minimal, *point, options.tolerance, &shrunk_info) ==
          PointVerdict::kDiverge) {
        info = shrunk_info;
      } else {
        minimal = program;  // Defensive: never record a non-diverging repro.
      }
    }

    if (!options.corpus_dir.empty()) {
      Repro repro;
      repro.program = minimal;
      repro.point = *point;
      repro.tolerance = options.tolerance;
      repro.variable = info.variable;
      repro.expected_hash = info.compiled_hash;
      repro.detail = info.detail;
      const std::string stem =
          "seed" + std::to_string(seed) + "-" + point->name;
      result.repro_stems.push_back(
          WriteRepro(repro, options.corpus_dir, stem));
      log("  repro written: " + result.repro_stems.back() + ".{dml,json}");
    }
  }
  return result;
}

}  // namespace memphis::fuzz
