#ifndef MEMPHIS_FUZZ_ORACLE_H_
#define MEMPHIS_FUZZ_ORACLE_H_

#include <map>
#include <string>

#include "compiler/program.h"
#include "matrix/matrix_block.h"

namespace memphis::fuzz {

/// Variable environment for the reference interpreter. Scalars live as 1x1
/// matrices, mirroring the runtime's FetchMatrix convention. Ordered map so
/// iteration (e.g. when diffing all outputs) is deterministic.
using OracleEnv = std::map<std::string, MatrixPtr>;

/// Reference interpreter: evaluates a parsed Program directly against the
/// OpRegistry's `exec` kernels -- no planner, no placement, no caches, no
/// threads. This is the ground truth every mode-lattice configuration is
/// differenced against.
///
/// The caller must pass a Program that has NOT been through OptimizeProgram
/// (parse a fresh copy; Run() mutates its argument in place).
///
/// Semantics mirror the executor: BasicBlock outputs bind into `env` after
/// the whole DAG evaluates, ForBlock binds the loop variable as a 1x1 before
/// each body pass, EvictBlock is a no-op. Reading an unbound variable throws
/// MemphisError.
void OracleRun(const compiler::Program& program, OracleEnv* env);

}  // namespace memphis::fuzz

#endif  // MEMPHIS_FUZZ_ORACLE_H_
