#ifndef MEMPHIS_FUZZ_FUZZER_H_
#define MEMPHIS_FUZZ_FUZZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/tolerance.h"
#include "fuzz/generator.h"
#include "fuzz/lattice.h"

namespace memphis::fuzz {

/// How one program behaved under one lattice point, relative to the oracle.
enum class PointVerdict {
  /// Every output matches the reference interpreter and all structural
  /// checks (cache invariants, lineage serde) passed.
  kAgree,
  /// Numeric mismatch, structural check failure, or a system-side error the
  /// oracle did not raise -- a real finding.
  kDiverge,
  /// The oracle itself rejected the program (e.g. a shrink candidate reads
  /// an unbound variable): the program is malformed, not the system.
  kInvalid,
};

/// Diagnostic payload accompanying a kDiverge verdict.
struct DivergenceInfo {
  std::string point_name;
  /// First mismatching output variable; empty for structural failures and
  /// system-side errors.
  std::string variable;
  /// ContentHash of the *system's* value for `variable` (replay anchor).
  uint64_t compiled_hash = 0;
  std::string detail;
};

/// Runs `program` under `point` and classifies the outcome. Never throws on
/// system- or oracle-side MemphisErrors -- those become kDiverge/kInvalid.
PointVerdict ClassifyPoint(const GeneratedProgram& program,
                           const LatticePoint& point, const Tolerance& tol,
                           DivergenceInfo* info);

/// Sweeps the whole lattice; stops at the first divergence. kInvalid from
/// any point (oracle rejection) short-circuits as invalid.
PointVerdict ClassifyProgram(const GeneratedProgram& program,
                             const std::vector<LatticePoint>& lattice,
                             const Tolerance& tol, DivergenceInfo* info);

// --- corpus -----------------------------------------------------------------

/// A standalone reproduction: the script + the exact lattice point + the
/// expected divergence signature. Written as `<name>.dml` and `<name>.json`.
struct Repro {
  GeneratedProgram program;
  LatticePoint point;
  Tolerance tolerance;
  std::string variable;
  uint64_t expected_hash = 0;
  std::string detail;
};

/// Writes `<stem>.dml` + `<stem>.json` under `dir` (created if missing).
/// Returns the stem path (without extension).
std::string WriteRepro(const Repro& repro, const std::string& dir,
                       const std::string& stem);

/// Loads a repro from its two files. Throws MemphisError on malformed input.
Repro LoadRepro(const std::string& script_path, const std::string& config_path);

struct ReplayOutcome {
  /// The replay reproduced a divergence.
  bool diverged = false;
  /// The diverging variable's compiled-side ContentHash matched the recorded
  /// one byte-for-byte (only meaningful when the repro recorded a variable).
  bool hash_match = false;
  std::string detail;
};

/// Re-runs a repro under its recorded lattice point and reports whether the
/// divergence reproduces and whether the output bytes match the recording.
ReplayOutcome ReplayRepro(const Repro& repro);

// --- campaign ---------------------------------------------------------------

struct CampaignOptions {
  int runs = 100;
  uint64_t seed = 1;
  GeneratorOptions generator;
  std::vector<LatticePoint> lattice;
  Tolerance tolerance;
  bool shrink = true;
  /// When non-empty, every divergence is written here as a repro pair.
  std::string corpus_dir;
  /// Progress/divergence sink (default: silent).
  std::function<void(const std::string&)> log;
};

struct CampaignResult {
  int runs = 0;
  int divergences = 0;
  std::vector<std::string> repro_stems;
};

/// Generates `runs` programs from consecutive seeds and classifies each one
/// against the lattice; divergences are (optionally) shrunk and written to
/// the corpus.
CampaignResult RunCampaign(const CampaignOptions& options);

}  // namespace memphis::fuzz

#endif  // MEMPHIS_FUZZ_FUZZER_H_
