#ifndef MEMPHIS_FUZZ_PERSIST_FUZZ_H_
#define MEMPHIS_FUZZ_PERSIST_FUZZ_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace memphis::fuzz {

/// Kill-replay fuzzing of the durable tier (cache/persist.h): write a seeded
/// segment log, kill it at a random byte offset, reopen, and compare every
/// surviving entry bitwise against an exact oracle of which records must
/// survive that damage. Complements the metamorphic fuzzer: this one proves
/// the *recovery* invariants (truncate at the last valid checksum, drop
/// whole segments with torn headers, never serve a corrupt payload, never
/// crash) rather than numeric agreement.

/// One case, fully deterministic: `seed` drives the op sequence, payload
/// bytes, and segment-size choice; `ops` bounds how many ops run (a smaller
/// `ops` with the same seed replays a prefix of the same sequence, which is
/// what makes cases shrinkable); `variant` picks the damage model;
/// `kill_offset` is taken modulo the written log size, so it stays valid
/// while shrinking.
struct PersistKillCase {
  uint64_t seed = 0;
  int ops = 0;
  int variant = 0;  // 0 = truncate at the offset, 1 = flip one bit there.
  uint64_t kill_offset = 0;
};

struct PersistKillOptions {
  int kills = 200;    // Cases to run; case i derives from seed + i.
  uint64_t seed = 1;
  std::string work_dir = "persist-fuzz-work";  // Scratch; wiped per case.
  std::string corpus_dir;  // Failing repros land here when non-empty.
  bool shrink = true;
  std::function<void(const std::string&)> log;
};

struct PersistKillResult {
  int cases = 0;
  int failures = 0;
  std::vector<std::string> repro_paths;
};

/// Runs one case end to end: write the log, kill it, reopen (twice --
/// recovery must be idempotent), compare against the oracle. Returns true
/// when recovery matched the oracle exactly; otherwise fills `detail` with
/// the first divergence. Never throws on damage -- a crash here IS the bug.
bool RunPersistKillCase(const PersistKillCase& kase,
                        const std::string& work_dir, std::string* detail);

/// Campaign driver: `kills` seeded cases, shrinking and writing a corpus
/// repro for every failure.
PersistKillResult RunPersistKillCampaign(const PersistKillOptions& options);

/// Shrinks a failing case by halving then decrementing `ops` (each smaller
/// case replays a prefix of the same op sequence). Returns the smallest
/// still-failing case and updates `detail` to its divergence.
PersistKillCase ShrinkPersistKillCase(PersistKillCase kase,
                                      const std::string& work_dir,
                                      std::string* detail);

/// Writes / loads a standalone JSON repro of one case. Returns the path.
std::string WritePersistKillRepro(const PersistKillCase& kase,
                                  const std::string& detail,
                                  const std::string& corpus_dir);
PersistKillCase LoadPersistKillRepro(const std::string& path);

}  // namespace memphis::fuzz

#endif  // MEMPHIS_FUZZ_PERSIST_FUZZ_H_
