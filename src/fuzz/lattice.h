#ifndef MEMPHIS_FUZZ_LATTICE_H_
#define MEMPHIS_FUZZ_LATTICE_H_

#include <map>
#include <string>
#include <vector>

#include "common/config.h"
#include "fuzz/fuzz_json.h"
#include "fuzz/generator.h"
#include "matrix/matrix_block.h"
#include "runtime/fault_injection.h"

namespace memphis::fuzz {

/// One point of the mode lattice: a full SystemConfig (reuse policy, memory
/// budgets, placement pressure, thread-pool width), a repeat count (>1 makes
/// the lineage cache actually serve hits), and an optional deterministic
/// kernel fault. Everything needed to replay a run is in this struct, and it
/// round-trips through JSON byte-for-byte.
struct LatticePoint {
  std::string name;
  int repeats = 1;
  SystemConfig config;
  /// Armed iff fault.opcode is non-empty.
  KernelFault fault;
};

/// The full sweep used by the memphis_fuzz CLI (~8 points): reuse modes,
/// starved cache/device budgets, Spark-forced and GPU-eager placement, and
/// thread-pool widths 1/4/8.
std::vector<LatticePoint> DefaultLattice();

/// A 4-point subset cheap enough for tier-1 ctest.
std::vector<LatticePoint> SmokeLattice();

// --- config serde (corpus snapshots) ----------------------------------------
Json ConfigToJson(const SystemConfig& config);
SystemConfig ConfigFromJson(const Json& json);
Json PointToJson(const LatticePoint& point);
LatticePoint PointFromJson(const Json& json);

/// Result of one program under one lattice point.
struct PointResult {
  /// Output variables after the last repeat (scalars as 1x1), fetched back
  /// to the host. Ordered for deterministic diffing.
  std::map<std::string, MatrixPtr> outputs;
  /// Non-empty when a structural check failed after execution: a cache
  /// invariant violation or a lineage serde round-trip mismatch. These are
  /// system bugs regardless of whether the numeric outputs agree.
  std::string structural_error;
};

/// Runs the program under `point`: binds the seeded inputs (with stable
/// lineage ids so repeats are reusable), parses a fresh Program from the
/// canonical script text, executes it `repeats` times through the full
/// system, fetches every output variable, then checks cache invariants and
/// lineage-serde round-trips. Execution errors (MemphisError) propagate to
/// the caller for classification.
PointResult RunUnderPoint(const GeneratedProgram& program,
                          const LatticePoint& point);

/// All variable names a program's script assigns (block outputs, loop bodies
/// included), in first-assignment order.
std::vector<std::string> ProgramOutputVars(const std::string& script);

}  // namespace memphis::fuzz

#endif  // MEMPHIS_FUZZ_LATTICE_H_
