#ifndef MEMPHIS_FUZZ_GENERATOR_H_
#define MEMPHIS_FUZZ_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/matrix_block.h"

namespace memphis::fuzz {

/// One deterministic input matrix: kernels::Rand(rows, cols, lo, hi,
/// sparsity, seed). The spec (not the data) is what gets written into a
/// corpus repro, so replays rebuild bit-identical inputs.
struct InputSpec {
  std::string name;
  size_t rows = 0;
  size_t cols = 0;
  double lo = -1.0;
  double hi = 1.0;
  double sparsity = 1.0;
  uint64_t seed = 1;
};

MatrixPtr MakeInput(const InputSpec& spec);

/// One generated DML statement. `text` is the exact script fragment
/// (including the trailing ';' or a whole `for (...) { ... }` block);
/// `targets`/`uses` drive the shrinker's dead-statement analysis and
/// `aliases` lists same-shape operand variables that can replace the whole
/// right-hand side (the shrinker's operand-deletion move).
struct FuzzStatement {
  std::vector<std::string> targets;
  std::vector<std::string> uses;
  std::vector<std::string> aliases;
  std::string text;
};

/// A generated multi-statement program. The script text is the canonical
/// representation: every consumer (mode-lattice runner, oracle, replay)
/// parses it through the real compiler::ParseProgram frontend.
struct GeneratedProgram {
  uint64_t seed = 0;
  std::vector<InputSpec> inputs;
  std::vector<FuzzStatement> statements;
  /// Replayed corpus scripts carry raw text instead of statement structure.
  std::string raw_script;

  std::string Script() const;
};

struct GeneratorOptions {
  int min_statements = 5;
  int max_statements = 16;
  int max_inputs = 3;
  size_t min_rows = 24;
  size_t max_rows = 96;
  size_t min_cols = 3;
  size_t max_cols = 8;
  /// Upper bound on any intermediate's cells (keeps tiny-device lattice
  /// points free of legitimate single-allocation OOMs).
  size_t max_cells = 16384;
  bool allow_loops = true;
  /// Seeded rand()/seq() statements (deterministic, hence reusable).
  bool allow_datagen = true;
};

/// Emits a random shape-consistent program over the OpRegistry surface:
/// elementwise unary/binary chains, matrix products (matmult/tsmm/tsmm2),
/// transposes, row/column aggregations, slices, cbind/rbind, comparisons,
/// seeded data generation, and an optional accumulation for-loop.
///
/// Two invariants make the output metamorphic-friendly:
///  * magnitude control: every production tracks a rough magnitude bound and
///    squashes (sigmoid) instead of letting products overflow to inf;
///  * stability: discontinuous ops (round/floor/ceil/sign, comparisons,
///    rowIndexMax) are only applied to values that are bitwise identical on
///    every backend -- never downstream of partition-order-sensitive
///    reductions -- so a one-ULP summation difference can never flip a
///    discrete output and masquerade as a planner bug.
GeneratedProgram GenerateProgram(uint64_t seed,
                                 const GeneratorOptions& options = {});

}  // namespace memphis::fuzz

#endif  // MEMPHIS_FUZZ_GENERATOR_H_
