#include "fuzz/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "matrix/kernels.h"

namespace memphis::fuzz {

namespace {

/// Rough per-variable state driving shape- and stability-directed sampling.
struct Var {
  std::string name;
  size_t rows = 0;
  size_t cols = 0;
  /// Loose upper bound on |value|; productions that would push it past
  /// kMaxMagnitude are rejected so chains never overflow to inf.
  double mag = 1.0;
  /// Bitwise identical on every backend: false once the value has passed
  /// through a partition-order-sensitive reduction (column aggregations,
  /// matrix products, sums). Discontinuous ops require an exact operand.
  bool exact = true;
};

constexpr double kMaxMagnitude = 1e5;

std::string Num(double value) {
  char buffer[40];
  if (value == std::floor(value) && std::fabs(value) < 1e12) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

/// Two-decimal constant in [lo, hi]: exact in text form, so the compiled
/// run and the oracle parse the identical double.
double Const2(Rng* rng, double lo, double hi) {
  const double raw = rng->NextDouble(lo, hi);
  return std::round(raw * 100.0) / 100.0;
}

class Generator {
 public:
  Generator(uint64_t seed, const GeneratorOptions& options)
      : rng_(seed), options_(options) {
    program_.seed = seed;
  }

  GeneratedProgram Generate() {
    MakeInputs();
    const int statements =
        options_.min_statements +
        static_cast<int>(rng_.NextInt(
            options_.max_statements - options_.min_statements + 1));
    bool loop_emitted = false;
    for (int i = 0; i < statements; ++i) {
      // At most one accumulation loop per program, somewhere in the middle.
      if (options_.allow_loops && !loop_emitted && i + 1 < statements &&
          rng_.NextInt(8) == 0) {
        EmitLoop();
        loop_emitted = true;
        continue;
      }
      EmitOneStatement();
    }
    // A scalar tail output so every program exercises the scalar fetch path.
    const Var& last = vars_.back();
    Emit({"fz_mean"}, "fz_mean = mean(" + last.name + ");", {last.name}, 1, 1,
         last.mag, false);
    return std::move(program_);
  }

 private:
  void MakeInputs() {
    const int count =
        1 + static_cast<int>(rng_.NextInt(options_.max_inputs));
    size_t shared_rows = 0;
    for (int i = 0; i < count; ++i) {
      InputSpec spec;
      spec.name = "X" + std::to_string(i);
      spec.rows = options_.min_rows +
                  rng_.NextInt(options_.max_rows - options_.min_rows + 1);
      // Sharing row counts makes tsmm2/cbind/elementwise pairs reachable.
      if (shared_rows != 0 && rng_.NextInt(2) == 0) spec.rows = shared_rows;
      shared_rows = spec.rows;
      spec.cols = options_.min_cols +
                  rng_.NextInt(options_.max_cols - options_.min_cols + 1);
      spec.lo = -1.0;
      spec.hi = 1.0;
      spec.sparsity = rng_.NextInt(4) == 0 ? 0.7 : 1.0;
      spec.seed = program_.seed * 1000003 + i + 1;
      program_.inputs.push_back(spec);
      vars_.push_back(Var{spec.name, spec.rows, spec.cols, 1.0, true});
    }
  }

  const Var& Pick() { return vars_[rng_.NextInt(vars_.size())]; }

  /// A random variable satisfying `pred`, or nullptr.
  template <typename Pred>
  const Var* PickWhere(Pred pred) {
    std::vector<const Var*> pool;
    for (const Var& var : vars_) {
      if (pred(var)) pool.push_back(&var);
    }
    if (pool.empty()) return nullptr;
    return pool[rng_.NextInt(pool.size())];
  }

  std::string NextName() { return "v" + std::to_string(next_id_++); }

  /// Records a statement and its result variable. Aliases (operands whose
  /// shape matches the result) are derived automatically for the shrinker.
  void Emit(std::vector<std::string> targets, std::string text,
            std::vector<std::string> uses, size_t rows, size_t cols,
            double mag, bool exact) {
    FuzzStatement statement;
    statement.targets = targets;
    statement.text = std::move(text);
    statement.uses = uses;
    for (const std::string& use : uses) {
      for (const Var& var : vars_) {
        if (var.name == use && var.rows == rows && var.cols == cols) {
          statement.aliases.push_back(use);
        }
      }
    }
    program_.statements.push_back(std::move(statement));
    if (std::getenv("MEMPHIS_FUZZ_TRACE") != nullptr) {
      std::fprintf(stderr, "emit: %s\n",
                   program_.statements.back().text.c_str());
    }
    vars_.push_back(
        Var{targets.front(), rows, cols, std::min(mag, kMaxMagnitude), exact});
  }

  bool FitsBudget(size_t rows, size_t cols, double mag) const {
    return rows > 0 && cols > 0 && rows * cols <= options_.max_cells &&
           mag <= kMaxMagnitude;
  }

  void EmitLoop() {
    const Var seedvar = Pick();  // By value: Emit() reallocates vars_.
    const std::string acc = NextName();
    Emit({acc}, acc + " = " + seedvar.name + " * 0.5;", {seedvar.name},
         seedvar.rows, seedvar.cols, seedvar.mag, seedvar.exact);
    const int iters = 2 + static_cast<int>(rng_.NextInt(3));
    const Var accvar = vars_.back();
    // acc = acc * 0.8 + seed * (0.05 * li);  -- magnitude-contracting.
    FuzzStatement loop;
    loop.targets = {acc};
    loop.uses = {acc, seedvar.name};
    loop.text = "for (li in 1:" + std::to_string(iters) + ") { " + acc +
                " = " + acc + " * 0.8 + " + seedvar.name +
                " * (0.05 * li); }";
    program_.statements.push_back(std::move(loop));
    vars_.push_back(Var{acc, accvar.rows, accvar.cols,
                        accvar.mag + seedvar.mag, seedvar.exact});
  }

  void EmitOneStatement() {
    for (int attempt = 0; attempt < 48; ++attempt) {
      if (TryProduction(static_cast<int>(rng_.NextInt(20)))) return;
    }
    // Fallback: squash an arbitrary variable -- always feasible.
    const Var& a = Pick();
    const std::string t = NextName();
    Emit({t}, t + " = sigmoid(" + a.name + ");", {a.name}, a.rows, a.cols,
         1.0, a.exact);
  }

  bool TryProduction(int production) {
    if (std::getenv("MEMPHIS_FUZZ_TRACE") != nullptr) {
      std::fprintf(stderr, "try: %d\n", production);
    }
    switch (production) {
      case 0: {  // Smooth unary.
        static const char* kOps[] = {"relu", "abs", "sigmoid", "neg"};
        const Var& a = Pick();
        const char* op = kOps[rng_.NextInt(4)];
        const std::string t = NextName();
        const double mag = std::string(op) == "sigmoid" ? 1.0 : a.mag;
        Emit({t}, t + " = " + op + "(" + a.name + ");", {a.name}, a.rows,
             a.cols, mag, a.exact);
        return true;
      }
      case 1: {  // Guarded sqrt / log / exp.
        const Var& a = Pick();
        const std::string t = NextName();
        switch (rng_.NextInt(3)) {
          case 0:
            Emit({t}, t + " = sqrt(abs(" + a.name + "));", {a.name}, a.rows,
                 a.cols, std::sqrt(a.mag), a.exact);
            break;
          case 1:
            Emit({t}, t + " = log(abs(" + a.name + ") + 1);", {a.name},
                 a.rows, a.cols, std::log1p(a.mag), a.exact);
            break;
          default:
            Emit({t}, t + " = exp(neg(abs(" + a.name + ")));", {a.name},
                 a.rows, a.cols, 1.0, a.exact);
            break;
        }
        return true;
      }
      case 2: case 3: {  // Elementwise add/sub of shape-mates.
        const Var& a = Pick();
        const Var* b = PickWhere([&](const Var& v) {
          return v.rows == a.rows && v.cols == a.cols;
        });
        if (b == nullptr || !FitsBudget(a.rows, a.cols, a.mag + b->mag)) {
          return false;
        }
        const char* op = rng_.NextInt(2) == 0 ? " + " : " - ";
        const std::string t = NextName();
        Emit({t}, t + " = " + a.name + op + b->name + ";", {a.name, b->name},
             a.rows, a.cols, a.mag + b->mag, a.exact && b->exact);
        return true;
      }
      case 4: {  // Elementwise product.
        const Var& a = Pick();
        const Var* b = PickWhere([&](const Var& v) {
          return v.rows == a.rows && v.cols == a.cols;
        });
        if (b == nullptr || !FitsBudget(a.rows, a.cols, a.mag * b->mag)) {
          return false;
        }
        const std::string t = NextName();
        Emit({t}, t + " = " + a.name + " * " + b->name + ";",
             {a.name, b->name}, a.rows, a.cols, a.mag * b->mag,
             a.exact && b->exact);
        return true;
      }
      case 5: {  // Guarded division.
        const Var& a = Pick();
        const Var* b = PickWhere([&](const Var& v) {
          return v.rows == a.rows && v.cols == a.cols;
        });
        if (b == nullptr) return false;
        const std::string t = NextName();
        Emit({t},
             t + " = " + a.name + " / (abs(" + b->name + ") + 1.5);",
             {a.name, b->name}, a.rows, a.cols, a.mag, a.exact && b->exact);
        return true;
      }
      case 6: {  // Elementwise min/max.
        const Var& a = Pick();
        const Var* b = PickWhere([&](const Var& v) {
          return v.rows == a.rows && v.cols == a.cols;
        });
        if (b == nullptr) return false;
        const char* op = rng_.NextInt(2) == 0 ? "min" : "max";
        const std::string t = NextName();
        Emit({t}, t + " = " + op + "(" + a.name + ", " + b->name + ");",
             {a.name, b->name}, a.rows, a.cols, std::max(a.mag, b->mag),
             a.exact && b->exact);
        return true;
      }
      case 7: {  // Scalar affine.
        const Var& a = Pick();
        const double c1 = Const2(&rng_, -2.0, 2.0);
        const double c2 = Const2(&rng_, -2.0, 2.0);
        const double mag = a.mag * std::fabs(c1) + std::fabs(c2);
        if (!FitsBudget(a.rows, a.cols, mag)) return false;
        const std::string t = NextName();
        Emit({t},
             t + " = " + a.name + " * " + Num(c1) + " + " + Num(c2) + ";",
             {a.name}, a.rows, a.cols, mag, a.exact);
        return true;
      }
      case 8: {  // Comparison (stability: exact operands only).
        const Var* a = PickWhere([](const Var& v) { return v.exact; });
        if (a == nullptr) return false;
        static const char* kCmp[] = {">", ">=", "<", "<="};
        const std::string t = NextName();
        Emit({t},
             t + " = " + a->name + " " + kCmp[rng_.NextInt(4)] + " " +
                 Num(Const2(&rng_, -0.5, 0.5)) + ";",
             {a->name}, a->rows, a->cols, 1.0, true);
        return true;
      }
      case 9: {  // Discrete unary (stability: exact operands only).
        const Var* a = PickWhere([](const Var& v) { return v.exact; });
        if (a == nullptr) return false;
        static const char* kOps[] = {"round", "floor", "ceil", "sign"};
        const std::string t = NextName();
        Emit({t}, t + " = " + kOps[rng_.NextInt(4)] + "(" + a->name + ");",
             {a->name}, a->rows, a->cols, a->mag + 1.0, true);
        return true;
      }
      case 10: {  // Matrix product, rescaled by the inner dimension.
        const Var& a = Pick();
        const Var* b = PickWhere(
            [&](const Var& v) { return v.rows == a.cols; });
        if (b == nullptr) return false;
        const double scale = 1.0 / static_cast<double>(a.cols);
        const double mag = a.mag * b->mag;
        if (!FitsBudget(a.rows, b->cols, mag)) return false;
        const std::string t = NextName();
        Emit({t},
             t + " = (" + a.name + " %*% " + b->name + ") * " + Num(scale) +
                 ";",
             {a.name, b->name}, a.rows, b->cols, mag, false);
        return true;
      }
      case 11: {  // tsmm: t(X) %*% X, rescaled by the row count.
        const Var& a = Pick();
        const double mag = a.mag * a.mag;
        if (!FitsBudget(a.cols, a.cols, mag)) return false;
        const std::string t = NextName();
        Emit({t},
             t + " = tsmm(" + a.name + ") * " +
                 Num(1.0 / static_cast<double>(a.rows)) + ";",
             {a.name}, a.cols, a.cols, mag, false);
        return true;
      }
      case 12: {  // tsmm2: t(A) %*% B over row-aligned operands.
        const Var& a = Pick();
        const Var* b = PickWhere(
            [&](const Var& v) { return v.rows == a.rows; });
        if (b == nullptr || !FitsBudget(a.cols, b->cols, a.mag * b->mag)) {
          return false;
        }
        const std::string t = NextName();
        Emit({t},
             t + " = tsmm2(" + a.name + ", " + b->name + ") * " +
                 Num(1.0 / static_cast<double>(a.rows)) + ";",
             {a.name, b->name}, a.cols, b->cols, a.mag * b->mag, false);
        return true;
      }
      case 13: {  // Transpose.
        const Var& a = Pick();
        const std::string t = NextName();
        Emit({t}, t + " = t(" + a.name + ");", {a.name}, a.cols, a.rows,
             a.mag, a.exact);
        return true;
      }
      case 14: {  // Column aggregation (order-sensitive -> inexact).
        const Var& a = Pick();
        static const char* kAggs[] = {"colSums", "colMeans", "colMins",
                                      "colMaxs"};
        const int which = static_cast<int>(rng_.NextInt(4));
        const double mag =
            which == 0 ? a.mag * static_cast<double>(a.rows) : a.mag;
        if (!FitsBudget(1, a.cols, mag)) return false;
        // Min/max are order-insensitive, sums/means are not.
        const bool exact = a.exact && which >= 2;
        const std::string t = NextName();
        Emit({t}, t + " = " + kAggs[which] + "(" + a.name + ");", {a.name},
             1, a.cols, mag, exact);
        return true;
      }
      case 15: {  // Row aggregation.
        const Var& a = Pick();
        static const char* kAggs[] = {"rowSums", "rowMeans", "rowMaxs"};
        const int which = static_cast<int>(rng_.NextInt(3));
        const double mag =
            which == 0 ? a.mag * static_cast<double>(a.cols) : a.mag;
        if (!FitsBudget(a.rows, 1, mag)) return false;
        const bool exact = a.exact && which == 2;
        const std::string t = NextName();
        Emit({t}, t + " = " + kAggs[which] + "(" + a.name + ");", {a.name},
             a.rows, 1, mag, exact);
        return true;
      }
      case 16: {  // Column slice.
        const Var& a = Pick();
        if (a.cols < 2) return false;
        const size_t lo = rng_.NextInt(a.cols - 1);
        const size_t hi = lo + 1 + rng_.NextInt(a.cols - lo - 1) + 1;
        const std::string t = NextName();
        Emit({t},
             t + " = sliceCols(" + a.name + ", " + std::to_string(lo) +
                 ", " + std::to_string(hi) + ");",
             {a.name}, a.rows, hi - lo, a.mag, a.exact);
        return true;
      }
      case 17: {  // Row slice.
        const Var& a = Pick();
        if (a.rows < 2) return false;
        const size_t lo = rng_.NextInt(a.rows - 1);
        const size_t hi = lo + 1 + rng_.NextInt(a.rows - lo - 1) + 1;
        const std::string t = NextName();
        Emit({t},
             t + " = sliceRows(" + a.name + ", " + std::to_string(lo) +
                 ", " + std::to_string(hi) + ");",
             {a.name}, hi - lo, a.cols, a.mag, a.exact);
        return true;
      }
      case 18: {  // cbind / rbind.
        const Var& a = Pick();
        const bool cbind = rng_.NextInt(2) == 0;
        const Var* b = PickWhere([&](const Var& v) {
          return cbind ? v.rows == a.rows : v.cols == a.cols;
        });
        if (b == nullptr) return false;
        const size_t rows = cbind ? a.rows : a.rows + b->rows;
        const size_t cols = cbind ? a.cols + b->cols : a.cols;
        if (!FitsBudget(rows, cols, std::max(a.mag, b->mag))) return false;
        const std::string t = NextName();
        Emit({t},
             t + " = " + (cbind ? "cbind" : "rbind") + "(" + a.name + ", " +
                 b->name + ");",
             {a.name, b->name}, rows, cols, std::max(a.mag, b->mag),
             a.exact && b->exact);
        return true;
      }
      default: {  // Seeded data generation.
        if (!options_.allow_datagen) return false;
        const std::string t = NextName();
        if (rng_.NextInt(3) == 0) {
          const size_t n = 8 + rng_.NextInt(24);
          Emit({t}, t + " = seq(1, " + std::to_string(n) + ", 1);", {}, n, 1,
               static_cast<double>(n), true);
        } else {
          const size_t rows = options_.min_rows +
                              rng_.NextInt(options_.max_rows -
                                           options_.min_rows + 1);
          const size_t cols =
              options_.min_cols +
              rng_.NextInt(options_.max_cols - options_.min_cols + 1);
          const uint64_t seed = rng_.NextInt(1 << 20) + 1;
          Emit({t},
               t + " = rand(" + std::to_string(rows) + ", " +
                   std::to_string(cols) + ", -1, 1, 1, " +
                   std::to_string(seed) + ");",
               {}, rows, cols, 1.0, true);
        }
        return true;
      }
    }
  }

  Rng rng_;
  GeneratorOptions options_;
  GeneratedProgram program_;
  std::vector<Var> vars_;
  int next_id_ = 0;
};

}  // namespace

MatrixPtr MakeInput(const InputSpec& spec) {
  return kernels::Rand(spec.rows, spec.cols, spec.lo, spec.hi, spec.sparsity,
                       spec.seed);
}

std::string GeneratedProgram::Script() const {
  if (!raw_script.empty()) return raw_script;
  std::string script;
  for (const FuzzStatement& statement : statements) {
    script += statement.text;
    script += "\n";
  }
  return script;
}

GeneratedProgram GenerateProgram(uint64_t seed,
                                 const GeneratorOptions& options) {
  return Generator(seed, options).Generate();
}

}  // namespace memphis::fuzz
