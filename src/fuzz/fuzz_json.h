#ifndef MEMPHIS_FUZZ_FUZZ_JSON_H_
#define MEMPHIS_FUZZ_FUZZ_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace memphis::fuzz {

/// Minimal JSON value used for fuzz config snapshots and corpus repro
/// metadata. Hand-rolled (the toolchain image has no JSON library) and
/// deliberately small: objects, arrays, strings, doubles, bools. Object keys
/// keep sorted order (std::map) so serialization is byte-stable -- the
/// replay round-trip test compares emitted configs verbatim.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json Bool(bool value);
  static Json Number(double value);
  static Json Str(std::string value);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Object access. `Get` throws MemphisError when the key is missing;
  /// `GetOr` returns the fallback instead (forward-compatible configs).
  Json& Set(const std::string& key, Json value);
  const Json& Get(const std::string& key) const;
  double GetOr(const std::string& key, double fallback) const;
  bool GetOr(const std::string& key, bool fallback) const;
  std::string GetOr(const std::string& key, const std::string& fallback) const;
  bool Has(const std::string& key) const;

  /// Array access.
  void Append(Json value);
  size_t size() const { return array_.size(); }
  const Json& at(size_t index) const { return array_.at(index); }

  /// Pretty-printed (2-space indent) canonical serialization.
  std::string Dump() const;

  /// Parses a JSON document. Throws MemphisError on malformed input.
  static Json Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace memphis::fuzz

#endif  // MEMPHIS_FUZZ_FUZZ_JSON_H_
