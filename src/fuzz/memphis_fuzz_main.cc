// memphis_fuzz: metamorphic fuzzer for the MEMPHIS runtime.
//
// Generates random multi-backend DML programs, executes each one under a
// lattice of system configurations (reuse modes, starved caches, forced
// Spark/GPU placement, thread-pool widths), and differences every output
// against a reference-kernel oracle. Diverging programs are minimized by
// delta debugging and written to a corpus as standalone repro pairs.
//
// Usage:
//   memphis_fuzz [--runs N] [--seed N] [--lattice default|smoke]
//                [--corpus DIR] [--no-shrink] [--inject-bug OPCODE[:REL]]
//                [--verify-plans] [--verbose]
//   memphis_fuzz --replay SCRIPT.dml --config CONFIG.json [--verify-plans]
//   memphis_fuzz --persist-kills N [--seed N] [--persist-dir DIR]
//                [--corpus DIR] [--no-shrink]
//   memphis_fuzz --replay-persist REPRO.json [--persist-dir DIR]
//
// The --persist-kills mode is the durable-tier kill-replay fuzzer: each case
// writes a seeded segment log, kills it at a random byte offset (truncation
// or a single flipped bit), reopens, and compares every surviving entry
// bitwise against an exact recovery oracle (fuzz/persist_fuzz.h).
//
// Exit codes: 0 = clean (or replay reproduced as recorded), 1 = divergence
// found (or replay failed to reproduce), 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/status.h"
#include "fuzz/fuzzer.h"
#include "fuzz/persist_fuzz.h"
#include "obs/flags.h"

namespace {

using memphis::fuzz::CampaignOptions;
using memphis::fuzz::CampaignResult;
using memphis::fuzz::DefaultLattice;
using memphis::fuzz::LatticePoint;
using memphis::fuzz::PersistKillCase;
using memphis::fuzz::PersistKillOptions;
using memphis::fuzz::PersistKillResult;
using memphis::fuzz::ReplayOutcome;
using memphis::fuzz::Repro;
using memphis::fuzz::SmokeLattice;

[[noreturn]] void Usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr <<
      "usage: memphis_fuzz [--runs N] [--seed N] [--lattice default|smoke]\n"
      "                    [--corpus DIR] [--no-shrink]\n"
      "                    [--inject-bug OPCODE[:REL]] [--verify-plans]\n"
      "                    [--verbose] [--trace=FILE] [--metrics=FILE]\n"
      "       memphis_fuzz --replay SCRIPT.dml --config CONFIG.json\n"
      "                    [--verify-plans]\n"
      "       memphis_fuzz --persist-kills N [--seed N] [--persist-dir DIR]\n"
      "                    [--corpus DIR] [--no-shrink]\n"
      "       memphis_fuzz --replay-persist REPRO.json [--persist-dir DIR]\n";
  std::exit(2);
}

int ReplayPersist(const std::string& path, const std::string& work_dir) {
  const PersistKillCase kase = memphis::fuzz::LoadPersistKillRepro(path);
  std::string detail;
  if (memphis::fuzz::RunPersistKillCase(kase, work_dir, &detail)) {
    std::cout << "replay-persist: recovery is clean (no divergence)\n";
    return 1;
  }
  std::cout << "replay-persist: divergence reproduced: " << detail << "\n";
  return 0;
}

int Replay(const std::string& script_path, const std::string& config_path,
           bool verify_plans) {
  Repro repro = memphis::fuzz::LoadRepro(script_path, config_path);
  if (verify_plans) {
    repro.point.config.verify_plans = memphis::VerifyMode::kFull;
  }
  const ReplayOutcome outcome = memphis::fuzz::ReplayRepro(repro);
  if (!outcome.diverged) {
    std::cout << "replay: NO divergence (" << outcome.detail << ")\n";
    return 1;
  }
  std::cout << "replay: divergence reproduced: " << outcome.detail << "\n";
  if (!repro.variable.empty()) {
    std::cout << "replay: output bytes "
              << (outcome.hash_match ? "match" : "DO NOT match")
              << " the recorded hash\n";
    if (!outcome.hash_match) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions options;
  options.corpus_dir = "fuzz/corpus";
  std::string lattice_name = "default";
  std::string inject_bug;
  std::string replay_script;
  std::string replay_config;
  std::string replay_persist;
  int persist_kills = 0;
  std::string persist_dir = "persist-fuzz-work";
  bool verbose = false;
  bool verify_plans = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) Usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--runs") {
      options.runs = std::atoi(value().c_str());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--lattice") {
      lattice_name = value();
    } else if (arg == "--corpus") {
      options.corpus_dir = value();
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--inject-bug") {
      inject_bug = value();
    } else if (arg == "--replay") {
      replay_script = value();
    } else if (arg == "--config") {
      replay_config = value();
    } else if (arg == "--persist-kills") {
      persist_kills = std::atoi(value().c_str());
    } else if (arg == "--persist-dir") {
      persist_dir = value();
    } else if (arg == "--replay-persist") {
      replay_persist = value();
    } else if (arg == "--verify-plans") {
      verify_plans = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (memphis::obs::ParseObsFlag(arg)) {
      // --trace=<file> / --metrics=<file>: observability outputs, written
      // after the campaign (or replay) finishes.
    } else if (arg == "--help" || arg == "-h") {
      Usage("");
    } else {
      Usage("unknown flag: " + arg);
    }
  }

  try {
    if (!replay_persist.empty()) {
      const int replay_rc = ReplayPersist(replay_persist, persist_dir);
      memphis::obs::WriteObsOutputs();
      return replay_rc;
    }

    if (persist_kills > 0) {
      PersistKillOptions persist_options;
      persist_options.kills = persist_kills;
      persist_options.seed = options.seed;
      persist_options.work_dir = persist_dir;
      persist_options.corpus_dir = options.corpus_dir;
      persist_options.shrink = options.shrink;
      persist_options.log = [](const std::string& message) {
        std::cout << message << "\n";
      };
      const PersistKillResult result =
          memphis::fuzz::RunPersistKillCampaign(persist_options);
      std::cout << "memphis_fuzz: " << result.cases << " kill-replay cases, "
                << result.failures << " recovery failure(s)";
      if (!result.repro_paths.empty()) {
        std::cout << ", " << result.repro_paths.size() << " repro(s) in "
                  << persist_options.corpus_dir;
      }
      std::cout << "\n";
      if (!memphis::obs::WriteObsOutputs()) {
        std::cerr
            << "memphis_fuzz: failed to write --trace/--metrics output\n";
        return 2;
      }
      return result.failures == 0 ? 0 : 1;
    }

    if (!replay_script.empty() || !replay_config.empty()) {
      if (replay_script.empty() || replay_config.empty()) {
        Usage("--replay and --config must be given together");
      }
      const int replay_rc = Replay(replay_script, replay_config, verify_plans);
      memphis::obs::WriteObsOutputs();
      return replay_rc;
    }

    if (lattice_name == "default") {
      options.lattice = DefaultLattice();
    } else if (lattice_name == "smoke") {
      options.lattice = SmokeLattice();
    } else {
      Usage("unknown lattice: " + lattice_name);
    }

    if (verify_plans) {
      // Force the full static verifier at every lattice point: a campaign
      // under --verify-plans proves that every program the Executor accepts
      // also verifies (a verifier false positive surfaces as a divergence).
      for (LatticePoint& point : options.lattice) {
        point.config.verify_plans = memphis::VerifyMode::kFull;
      }
    }

    if (!inject_bug.empty()) {
      // OPCODE[:REL] -- arm the same deterministic kernel fault at every
      // lattice point; used to validate the whole detect->shrink->replay
      // pipeline against a known-bad kernel.
      memphis::KernelFault fault;
      const size_t colon = inject_bug.find(':');
      fault.opcode = inject_bug.substr(0, colon);
      if (colon != std::string::npos) {
        fault.relative_error = std::atof(inject_bug.substr(colon + 1).c_str());
      }
      for (LatticePoint& point : options.lattice) point.fault = fault;
    }

    options.log = [&](const std::string& message) {
      std::cout << message << "\n";
    };
    if (verbose) {
      std::cout << "lattice points:";
      for (const LatticePoint& point : options.lattice) {
        std::cout << " " << point.name;
      }
      std::cout << "\nruns=" << options.runs << " seed=" << options.seed
                << " corpus=" << options.corpus_dir << "\n";
    }

    const CampaignResult result = RunCampaign(options);
    std::cout << "memphis_fuzz: " << result.runs << " programs, "
              << result.divergences << " divergence(s)";
    if (!result.repro_stems.empty()) {
      std::cout << ", " << result.repro_stems.size() << " repro(s) in "
                << options.corpus_dir;
    }
    std::cout << "\n";
    if (!memphis::obs::WriteObsOutputs()) {
      std::cerr << "memphis_fuzz: failed to write --trace/--metrics output\n";
      return 2;
    }
    return result.divergences == 0 ? 0 : 1;
  } catch (const memphis::MemphisError& error) {
    std::cerr << "memphis_fuzz: " << error.what() << "\n";
    return 2;
  }
}
