#include "fuzz/persist_fuzz.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cache/persist.h"
#include "common/rng.h"
#include "common/status.h"
#include "fuzz/fuzz_json.h"

namespace memphis::fuzz {
namespace {

namespace fs = std::filesystem;

/// One appended record as the oracle models it: what was written, and the
/// exact byte span the tier placed it at.
struct ModelRecord {
  bool tombstone = false;
  std::string key;
  std::string payload;
  PersistRecordSpan span;
};

/// The log phase 1 produced: every record in append order plus the segment
/// files backing them (id order == append order; tracked bytes == file size,
/// since nothing is damaged yet).
struct WrittenLog {
  std::vector<ModelRecord> records;
  std::vector<PersistSegmentInfo> segments;
  uint64_t total_bytes = 0;
  size_t segment_bytes = 0;  // The tier config used, for reopening.
};

std::string MakePayload(Rng* rng) {
  // 0..160 bytes of arbitrary (including NUL and high-bit) content; short
  // enough that records straddle segment boundaries often.
  const size_t len = static_cast<size_t>(rng->NextInt(161));
  std::string payload;
  payload.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    payload.push_back(static_cast<char>(rng->NextInt(256)));
  }
  return payload;
}

/// Phase 1: drive a fresh tier with `kase.ops` seeded puts / overwrites /
/// removes, recording every appended record's span. The tier runs with an
/// unlimited budget and compaction disabled (dead ratio can never exceed 1.0
/// < 2.0), so the recorded spans stay the byte-truth of the on-disk log.
WrittenLog WriteLog(const PersistKillCase& kase, const std::string& dir) {
  Rng rng(kase.seed);
  PersistConfig config;
  config.dir = dir;
  config.budget_bytes = 0;
  config.compact_dead_ratio = 2.0;
  config.segment_bytes = 64 + rng.NextInt(8) * 64;  // 64..512: short segments.

  WrittenLog written;
  written.segment_bytes = config.segment_bytes;
  PersistentTier tier(config);
  std::vector<std::string> keys;   // Every key ever put, in first-put order.
  std::set<std::string> live;      // Keys currently live (for removes).
  for (int op = 0; op < kase.ops; ++op) {
    const uint64_t choice = rng.NextInt(100);
    ModelRecord record;
    if (choice < 60 || keys.empty()) {
      record.key = "key-" + std::to_string(keys.size());
      keys.push_back(record.key);
      record.payload = MakePayload(&rng);
      if (!tier.Put(record.key, record.payload, &record.span)) continue;
      live.insert(record.key);
    } else if (choice < 85) {
      record.key = keys[rng.NextInt(keys.size())];  // Overwrite.
      record.payload = MakePayload(&rng);
      if (!tier.Put(record.key, record.payload, &record.span)) continue;
      live.insert(record.key);
    } else {
      if (live.empty()) continue;
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextInt(live.size())));
      record.key = *it;
      record.tombstone = true;
      if (!tier.Remove(record.key, &record.span)) continue;
      live.erase(it);
    }
    written.records.push_back(std::move(record));
  }
  tier.Flush();
  written.segments = tier.Segments();
  for (const PersistSegmentInfo& segment : written.segments) {
    written.total_bytes += segment.bytes;
  }
  return written;
}

/// Maps a global offset into the concatenated log to the segment containing
/// it. Returns the index into `log.segments` and sets `local`.
size_t LocateSegment(const WrittenLog& log, uint64_t koff, uint64_t* local) {
  uint64_t start = 0;
  for (size_t i = 0; i < log.segments.size(); ++i) {
    if (koff < start + log.segments[i].bytes) {
      *local = koff - start;
      return i;
    }
    start += log.segments[i].bytes;
  }
  *local = 0;
  return log.segments.size();  // Unreachable: koff < total_bytes.
}

/// Phase 2: apply the kill. Variant 0 truncates the containing segment at
/// the offset and deletes every later segment file (a prefix crash). Variant
/// 1 flips one bit of the byte at the offset (latent media corruption).
void ApplyKill(const WrittenLog& log, int variant, uint64_t koff, int bit) {
  uint64_t local = 0;
  const size_t damaged = LocateSegment(log, koff, &local);
  if (damaged >= log.segments.size()) return;
  const PersistSegmentInfo& segment = log.segments[damaged];
  if (variant == 0) {
    fs::resize_file(segment.path, local);
    for (size_t i = damaged + 1; i < log.segments.size(); ++i) {
      fs::remove(log.segments[i].path);
    }
    return;
  }
  std::fstream file(segment.path,
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(static_cast<std::streamoff>(local));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(local));
  file.put(static_cast<char>(byte ^ (1 << bit)));
}

/// Phase 3: the exact oracle. A record survives the kill iff the opening
/// scan will still accept it:
///   - truncate: segments before the damaged one are intact; the damaged
///     one keeps records that end at or before the cut (the scan stops at
///     the first short/invalid record); later segments are gone.
///   - bit flip: only the damaged segment is affected. Damage inside its
///     12-byte header drops the whole segment; damage inside a record fails
///     that record's checksum (or de-frames it), so the scan stops there
///     and everything from that record on is dead. Records strictly before
///     the damaged byte's record survive.
/// Both cases reduce to `span.offset + span.length <= local` within the
/// damaged segment (header damage makes that false for every record).
/// The expected tier contents are then the replay, in append order, of the
/// surviving records: latest put per key wins, tombstones erase.
std::map<std::string, std::string> SurvivingModel(const WrittenLog& log,
                                                  int variant, uint64_t koff) {
  uint64_t local = 0;
  const size_t damaged = LocateSegment(log, koff, &local);
  const uint64_t damaged_id = log.segments[damaged].id;
  std::map<std::string, std::string> expected;
  for (const ModelRecord& record : log.records) {
    bool survives;
    if (record.span.segment_id == damaged_id) {
      survives = record.span.offset + record.span.length <= local;
    } else if (variant == 0) {
      survives = record.span.segment_id < damaged_id;  // Later files deleted.
    } else {
      survives = true;  // A bit flip is local to one segment.
    }
    if (!survives) continue;
    if (record.tombstone) {
      expected.erase(record.key);
    } else {
      expected[record.key] = record.payload;
    }
  }
  return expected;
}

/// Phase 4: reopen over the damaged directory and compare. Two rounds: the
/// second reopen checks that recovery is idempotent (the first may rename
/// torn-header segments aside; the surviving contents must not change).
bool VerifyRecovery(const std::string& dir, size_t segment_bytes,
                    const std::map<std::string, std::string>& expected,
                    std::string* detail) {
  PersistConfig config;
  config.dir = dir;
  config.budget_bytes = 0;
  config.compact_dead_ratio = 2.0;
  config.segment_bytes = segment_bytes;
  for (int round = 0; round < 2; ++round) {
    const std::string where = " (reopen round " + std::to_string(round) + ")";
    PersistentTier tier(config);
    const std::string invariants = tier.CheckInvariants();
    if (!invariants.empty()) {
      *detail = "invariants broken after recovery: " + invariants + where;
      return false;
    }
    const std::vector<std::string> keys = tier.Keys();
    if (keys.size() != expected.size()) {
      *detail = "recovered " + std::to_string(keys.size()) +
                " live keys, oracle expects " +
                std::to_string(expected.size()) + where;
      return false;
    }
    for (const std::string& key : keys) {
      auto it = expected.find(key);
      if (it == expected.end()) {
        *detail = "key '" + key + "' survived but the oracle killed it" +
                  where;
        return false;
      }
      std::string payload;
      if (!tier.Get(key, &payload)) {
        *detail = "indexed key '" + key + "' failed read-back verification" +
                  where;
        return false;
      }
      if (payload != it->second) {
        *detail = "payload of '" + key + "' is not bitwise identical" + where;
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool RunPersistKillCase(const PersistKillCase& kase,
                        const std::string& work_dir, std::string* detail) {
  const std::string dir = (fs::path(work_dir) / "case").string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  const WrittenLog log = WriteLog(kase, dir);
  if (log.total_bytes == 0) return true;  // Nothing hit disk: vacuous pass.
  const uint64_t koff = kase.kill_offset % log.total_bytes;
  const int bit = static_cast<int>((kase.seed ^ koff) % 8);
  ApplyKill(log, kase.variant, koff, bit);
  const std::map<std::string, std::string> expected =
      SurvivingModel(log, kase.variant, koff);
  return VerifyRecovery(dir, log.segment_bytes, expected, detail);
}

PersistKillCase ShrinkPersistKillCase(PersistKillCase kase,
                                      const std::string& work_dir,
                                      std::string* detail) {
  std::string candidate_detail;
  while (kase.ops > 1) {
    PersistKillCase candidate = kase;
    candidate.ops = kase.ops / 2;
    if (RunPersistKillCase(candidate, work_dir, &candidate_detail)) break;
    kase = candidate;
    *detail = candidate_detail;
  }
  while (kase.ops > 1) {
    PersistKillCase candidate = kase;
    candidate.ops = kase.ops - 1;
    if (RunPersistKillCase(candidate, work_dir, &candidate_detail)) break;
    kase = candidate;
    *detail = candidate_detail;
  }
  return kase;
}

PersistKillResult RunPersistKillCampaign(const PersistKillOptions& options) {
  const auto log = options.log != nullptr
                       ? options.log
                       : std::function<void(const std::string&)>(
                             [](const std::string&) {});
  PersistKillResult result;
  for (int i = 0; i < options.kills; ++i) {
    PersistKillCase kase;
    kase.seed = options.seed + static_cast<uint64_t>(i);
    // Case parameters come from a scrambled stream so they do not correlate
    // with the op stream, which starts from the raw seed.
    Rng rng(kase.seed * 0x9e3779b97f4a7c15ull + 1);
    kase.ops = 4 + static_cast<int>(rng.NextInt(61));  // 4..64 ops.
    kase.variant = static_cast<int>(rng.NextInt(2));
    // Bounded so the value survives the JSON double round-trip exactly.
    kase.kill_offset = rng.NextInt(1ull << 32);
    ++result.cases;
    std::string detail;
    if (RunPersistKillCase(kase, options.work_dir, &detail)) continue;
    ++result.failures;
    log("kill-replay seed " + std::to_string(kase.seed) + " FAILED: " +
        detail);
    if (options.shrink) {
      kase = ShrinkPersistKillCase(kase, options.work_dir, &detail);
      log("  shrunk to ops=" + std::to_string(kase.ops) + ": " + detail);
    }
    if (!options.corpus_dir.empty()) {
      result.repro_paths.push_back(
          WritePersistKillRepro(kase, detail, options.corpus_dir));
      log("  repro: " + result.repro_paths.back());
    }
  }
  return result;
}

std::string WritePersistKillRepro(const PersistKillCase& kase,
                                  const std::string& detail,
                                  const std::string& corpus_dir) {
  fs::create_directories(corpus_dir);
  Json json = Json::Object();
  json.Set("kind", Json::Str("persist-kill"));
  json.Set("seed", Json::Number(static_cast<double>(kase.seed)));
  json.Set("ops", Json::Number(static_cast<double>(kase.ops)));
  json.Set("variant", Json::Number(static_cast<double>(kase.variant)));
  json.Set("kill_offset",
           Json::Number(static_cast<double>(kase.kill_offset)));
  json.Set("detail", Json::Str(detail));
  const std::string path =
      (fs::path(corpus_dir) /
       ("persist-kill-seed" + std::to_string(kase.seed) + "-v" +
        std::to_string(kase.variant) + ".json"))
          .string();
  std::ofstream out(path, std::ios::binary);
  out << json.Dump();
  return path;
}

PersistKillCase LoadPersistKillRepro(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw MemphisError("cannot read persist repro: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const Json json = Json::Parse(text);
  PersistKillCase kase;
  kase.seed = static_cast<uint64_t>(json.GetOr("seed", 0.0));
  kase.ops = static_cast<int>(json.GetOr("ops", 0.0));
  kase.variant = static_cast<int>(json.GetOr("variant", 0.0));
  kase.kill_offset = static_cast<uint64_t>(json.GetOr("kill_offset", 0.0));
  return kase;
}

}  // namespace memphis::fuzz
