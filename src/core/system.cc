#include "core/system.h"

#include <sstream>

#include "common/util.h"

namespace memphis {

MemphisSystem::MemphisSystem(const SystemConfig& config,
                             const sim::CostModel& cost_model)
    : ctx_(std::make_unique<ExecutionContext>(config, cost_model)),
      executor_(std::make_unique<Executor>(ctx_.get())) {}

void MemphisSystem::Run(compiler::Program& program) {
  executor_->RunProgram(program);
}

void MemphisSystem::Run(compiler::BasicBlock& block) {
  executor_->RunBlock(block);
}

bool MemphisSystem::CallFunction(const std::string& name,
                                 const std::vector<std::string>& arg_vars,
                                 const std::vector<std::string>& output_vars,
                                 const std::function<void()>& body) {
  return executor_->CallFunction(name, arg_vars, output_vars, body);
}

std::string MemphisSystem::StatsReport() const {
  // One formatting path for every component: the unified metrics registry
  // (exec.*, cache.*, spark.*, gpu<d>.*, ...) replaces the per-component
  // Summary() string builders.
  std::ostringstream oss;
  oss << "mode=" << ToString(ctx_->config().reuse_mode)
      << " elapsed=" << FormatSeconds(ctx_->now()) << "\n"
      << ctx_->metrics().ToText();
  return oss.str();
}

}  // namespace memphis
