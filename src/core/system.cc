#include "core/system.h"

#include <sstream>

#include "common/util.h"

namespace memphis {

MemphisSystem::MemphisSystem(const SystemConfig& config,
                             const sim::CostModel& cost_model)
    : ctx_(std::make_unique<ExecutionContext>(config, cost_model)),
      executor_(std::make_unique<Executor>(ctx_.get())) {}

void MemphisSystem::Run(compiler::Program& program) {
  executor_->RunProgram(program);
}

void MemphisSystem::Run(compiler::BasicBlock& block) {
  executor_->RunBlock(block);
}

bool MemphisSystem::CallFunction(const std::string& name,
                                 const std::vector<std::string>& arg_vars,
                                 const std::vector<std::string>& output_vars,
                                 const std::function<void()>& body) {
  return executor_->CallFunction(name, arg_vars, output_vars, body);
}

std::string MemphisSystem::StatsReport() const {
  std::ostringstream oss;
  const auto& exec = ctx_->stats();
  const auto& cache = ctx_->cache().stats();
  const auto& spark = ctx_->spark().stats();
  const auto& gpu = ctx_->gpu().stats();
  const auto& gpu_cache = ctx_->gpu_cache().stats();
  const auto& spark_cache = ctx_->cache().spark_manager().stats();
  oss << "mode=" << ToString(ctx_->config().reuse_mode)
      << " elapsed=" << FormatSeconds(ctx_->now()) << "\n"
      << "  " << exec.Summary() << "\n"
      << "  cache: probes=" << cache.probes << " hits=" << cache.TotalHits()
      << " (host=" << cache.hits_host << " scalar=" << cache.hits_scalar
      << " rdd=" << cache.hits_rdd << " gpu=" << cache.hits_gpu
      << ") puts=" << cache.puts << "\n"
      << "  spark: jobs=" << spark.jobs << " tasks=" << spark.tasks
      << " collects=" << spark.collects
      << " rdds-cached=" << spark_cache.rdds_registered
      << " evicted=" << spark_cache.rdds_evicted
      << " async-mat=" << spark_cache.async_materializations
      << " bcast-destroyed=" << spark_cache.broadcasts_destroyed << "\n"
      << "  gpu: kernels=" << gpu.kernels << " mallocs=" << gpu.mallocs
      << " frees=" << gpu.frees << " recycled=" << gpu_cache.recycled_exact
      << " reused-ptrs=" << gpu_cache.reused_pointers
      << " d2h-evict=" << gpu_cache.d2h_evictions
      << " defrags=" << gpu_cache.defrags << "\n";
  return oss.str();
}

}  // namespace memphis
