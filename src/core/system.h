#ifndef MEMPHIS_CORE_SYSTEM_H_
#define MEMPHIS_CORE_SYSTEM_H_

#include <memory>
#include <string>

#include "compiler/program.h"
#include "runtime/execution_context.h"
#include "runtime/executor.h"

namespace memphis {

/// Public facade of the MEMPHIS system: one instance = one session with its
/// own virtual clock, backends, and hierarchical lineage cache.
///
/// Typical use (see examples/quickstart.cc):
///
///   SystemConfig config;                      // defaults = paper setup
///   config.reuse_mode = ReuseMode::kMemphis;
///   MemphisSystem system(config);
///   system.ctx().BindMatrix("X", ...);        // bind inputs
///   compiler::Program program = ...;          // build blocks
///   system.Run(program);                      // compile + execute
///   double seconds = system.ElapsedSeconds(); // simulated wall clock
class MemphisSystem {
 public:
  explicit MemphisSystem(const SystemConfig& config,
                         const sim::CostModel& cost_model = {});

  /// Applies program-level rewrites (once) and executes the program.
  void Run(compiler::Program& program);

  /// Executes one basic block (compiling it if needed).
  void Run(compiler::BasicBlock& block);

  /// Multi-level reuse entry point (see Executor::CallFunction).
  bool CallFunction(const std::string& name,
                    const std::vector<std::string>& arg_vars,
                    const std::vector<std::string>& output_vars,
                    const std::function<void()>& body);

  /// Simulated seconds elapsed on the driver clock.
  double ElapsedSeconds() const { return ctx_->now(); }

  /// Readies the session for another request of the same tenant without
  /// rebuilding backends: clears variable bindings and the lineage map but
  /// keeps the lineage cache warm (the serve layer's session-reuse path).
  void ResetForReuse() { ctx_->ResetForReuse(); }

  ExecutionContext& ctx() { return *ctx_; }
  Executor& executor() { return *executor_; }

  /// Multi-line human-readable report of all component statistics.
  std::string StatsReport() const;

 private:
  std::unique_ptr<ExecutionContext> ctx_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace memphis

#endif  // MEMPHIS_CORE_SYSTEM_H_
