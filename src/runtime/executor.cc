#include "runtime/executor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/status.h"
#include "common/util.h"
#include "compiler/fusion.h"
#include "compiler/op_registry.h"
#include "compiler/verifier.h"
#include "obs/trace.h"
#include "matrix/fused_kernel.h"
#include "matrix/kernels.h"
#include "matrix/transform_kernels.h"
#include "runtime/fault_injection.h"

namespace memphis {

namespace {

using compiler::CompileResult;
using compiler::Instruction;

/// Instructions whose outputs participate in lineage-based reuse. Transfer
/// results are reusable for `collect` (Spark action reuse), `d2h` (GPU
/// results at the host) and `h2d` (uploaded device copies); the rest only
/// move handles.
bool IsReusableOpcode(const std::string& opcode) {
  if (opcode == "read" || opcode == "literal" || opcode == "parallelize" ||
      opcode == "bcast" || opcode == "checkpoint") {
    return false;
  }
  return true;
}

/// The backend whose reuse rules gate this instruction (LIMA reuses only
/// local CP results; collect/d2h hits belong to the remote backends).
Backend ReuseBackend(const Instruction& inst) {
  if (inst.opcode == "collect") return Backend::kSpark;
  if (inst.opcode == "d2h" || inst.opcode == "h2d") return Backend::kGpu;
  return inst.backend;
}

/// Slices a captured full-height operand to a partition's row range; row
/// vectors and scalars pass through unchanged.
MatrixPtr AlignOperand(const MatrixPtr& operand, const spark::Partition& part,
                       size_t total_rows) {
  if (operand->rows() == total_rows && operand->rows() > 1 &&
      !(part.row_lo == 0 && part.row_hi == operand->rows())) {
    return kernels::Slice(*operand, part.row_lo, part.row_hi, 0,
                          operand->cols());
  }
  return operand;
}

std::string InstName(const Instruction& inst) {
  return inst.opcode + "@" + std::to_string(inst.output_slot);
}

}  // namespace

// --- program / block driving -------------------------------------------------

void Executor::RunProgram(compiler::Program& program) {
  compiler::OptimizeProgram(&program, ctx_->config());
  RunBlockList(program.blocks);
}

void Executor::RunBlockList(const std::vector<compiler::BlockPtr>& blocks) {
  for (const auto& block : blocks) {
    switch (block->kind()) {
      case compiler::Block::Kind::kBasic:
        RunBlock(*static_cast<compiler::BasicBlock*>(block.get()));
        break;
      case compiler::Block::Kind::kFor: {
        auto* loop = static_cast<compiler::ForBlock*>(block.get());
        for (double value : loop->values) {
          ctx_->BindScalar(loop->loop_var, value);
          RunBlockList(loop->body);
        }
        break;
      }
      case compiler::Block::Kind::kEvict: {
        auto* evict = static_cast<compiler::EvictBlock*>(block.get());
        for (int d = 0; d < ctx_->num_gpus(); ++d) {
          ctx_->gpu_cache(d).EvictPercent(evict->percent,
                                          ctx_->mutable_now());
        }
        break;
      }
    }
  }
}

compiler::CompileResult* Executor::CompileBlock(compiler::BasicBlock& block) {
  // Workloads may drive blocks directly (outside a Program); apply the
  // parameter-tuning rewrite to the block header on first contact.
  if (block.delay_factor == 0 && ctx_->config().auto_parameter_tuning) {
    compiler::TuneBasicBlockHeader(&block, {});
  }
  // Shape signature of all read variables: recompile when it changes.
  std::ostringstream signature;
  for (const auto& hop : block.dag().all_hops()) {
    if (hop->opcode() != "read") continue;
    const std::string& name = hop->var_name();
    if (!ctx_->HasVar(name)) {
      signature << name << ":?;";
      continue;
    }
    const Data& data = ctx_->GetVar(name);
    switch (data.kind) {
      case Data::Kind::kScalar:
        signature << name << ":s;";
        break;
      case Data::Kind::kMatrix:
        signature << name << ":" << data.matrix->rows() << "x"
                  << data.matrix->cols() << ";";
        break;
      case Data::Kind::kRdd:
        signature << name << ":R" << data.rdd->rows() << "x"
                  << data.rdd->cols() << ";";
        break;
      case Data::Kind::kGpu:
        signature << name << ":G" << data.gpu->buffer->bytes << ";";
        break;
      default:
        signature << name << ":e;";
    }
  }
  const std::string sig = signature.str();
  if (block.cached_compile != nullptr && block.cached_signature == sig) {
    return block.cached_compile.get();
  }

  compiler::ShapeResolver resolver =
      [this](const std::string& name) -> compiler::VarInfo {
    if (!ctx_->HasVar(name)) return {{1, 1}, Backend::kCP};
    const Data& data = ctx_->GetVar(name);
    switch (data.kind) {
      case Data::Kind::kScalar:
        return {{1, 1}, Backend::kCP};
      case Data::Kind::kMatrix:
        // Device-resident copies take precedence (no h2d needed).
        if (data.gpu != nullptr && data.gpu->buffer->data != nullptr) {
          return {{data.matrix->rows(), data.matrix->cols()}, Backend::kGpu};
        }
        return {{data.matrix->rows(), data.matrix->cols()}, Backend::kCP};
      case Data::Kind::kRdd:
        return {{data.rdd->rows(), data.rdd->cols()}, Backend::kSpark};
      case Data::Kind::kGpu: {
        const auto& shadow = data.gpu->buffer->data;
        if (shadow != nullptr) {
          return {{shadow->rows(), shadow->cols()}, Backend::kGpu};
        }
        return {{1, data.gpu->buffer->bytes / sizeof(double)}, Backend::kGpu};
      }
      default:
        return {{1, 1}, Backend::kCP};
    }
  };

  compiler::CompileOptions options;
  options.async_operators = ctx_->config().async_operators;
  options.max_parallelize = ctx_->config().max_parallelize;
  options.checkpoint_placement = ctx_->config().checkpoint_placement;
  options.checkpoint_vars = block.checkpoint_vars;

  block.cached_compile = std::make_shared<CompileResult>(
      compiler::CompileDag(block.dag(), ctx_->config(), resolver, options));
  block.cached_signature = sig;
  ++ctx_->stats().recompilations;
  for (const Instruction& inst : block.cached_compile->instructions) {
    if (inst.fused != nullptr) {
      ++ctx_->fusion_stats().groups_formed;
      ctx_->fusion_stats().ops_fused +=
          static_cast<int64_t>(inst.fused->recipes.size());
    }
  }
  return block.cached_compile.get();
}

int Executor::EffectiveDelay(const compiler::BasicBlock& block) const {
  const SystemConfig& config = ctx_->config();
  if (config.reuse_mode == ReuseMode::kLima) return 1;  // Eager caching.
  if (!config.delayed_caching) return 1;
  return block.delay_factor > 0 ? block.delay_factor
                                : config.default_delay_factor;
}

void Executor::RunBlock(compiler::BasicBlock& block) {
  CompileResult* compiled = CompileBlock(block);
  std::vector<Slot> slots(compiled->instructions.size());
  for (size_t i = 0; i < compiled->instructions.size(); ++i) {
    ExecuteInstruction(compiled->instructions[i], &slots, block);
    // Live-variable management (Figure 8(a)): slots past their last use
    // release their GPU reference immediately, so deep blocks (e.g. CNN
    // forward passes) do not pin every intermediate until the block ends.
    for (int slot_index : compiled->instructions[i].input_slots) {
      if (compiled->last_use[slot_index] != static_cast<int>(i)) continue;
      Slot& dead = slots[slot_index];
      if (dead.gpu_owned && dead.data.gpu != nullptr) {
        ctx_->gpu_cache_for(dead.data.gpu)
            .Release(dead.data.gpu, ctx_->mutable_now());
        dead.gpu_owned = false;
      }
    }
  }
  // Release anything left (outputs of dead-end chains).
  for (auto& slot : slots) {
    if (slot.gpu_owned && slot.data.gpu != nullptr) {
      ctx_->gpu_cache_for(slot.data.gpu)
          .Release(slot.data.gpu, ctx_->mutable_now());
      slot.gpu_owned = false;
    }
  }
  ++ctx_->stats().blocks_executed;
}

// --- function-level (multi-level) reuse -----------------------------------------

bool Executor::CallFunction(const std::string& name,
                            const std::vector<std::string>& arg_vars,
                            const std::vector<std::string>& output_vars,
                            const std::function<void()>& body) {
  ++ctx_->stats().function_calls;
  const SystemConfig& config = ctx_->config();
  const bool enabled =
      config.multi_level_reuse && ctx_->probing_enabled() &&
      (config.reuse_mode == ReuseMode::kMemphis ||
       config.reuse_mode == ReuseMode::kHelix ||
       config.reuse_mode == ReuseMode::kProbeOnly);
  if (!enabled) {
    body();
    return false;
  }

  // One lineage item per function output (Section 3.3).
  std::vector<LineageItemPtr> arg_lineage;
  arg_lineage.reserve(arg_vars.size());
  for (const auto& var : arg_vars) {
    LineageItemPtr item = ctx_->lineage().Get(var);
    arg_lineage.push_back(item != nullptr ? item
                                          : LineageItem::Leaf("extern", var));
  }
  std::vector<LineageItemPtr> keys;
  keys.reserve(output_vars.size());
  for (size_t i = 0; i < output_vars.size(); ++i) {
    keys.push_back(LineageItem::Create(
        "func:" + name, "out" + std::to_string(i), arg_lineage));
  }

  // Probe all outputs; a full hit skips the body.
  ctx_->Charge(ctx_->cost_model().probe_overhead *
               static_cast<double>(keys.size()));
  std::vector<CacheEntryPtr> entries;
  bool all_hit = true;
  for (const auto& key : keys) {
    CacheEntryPtr entry = ctx_->cache().Reuse(key, ctx_->mutable_now());
    if (entry == nullptr) {
      all_hit = false;
      break;
    }
    entries.push_back(entry);
  }
  if (all_hit) {
    for (size_t i = 0; i < output_vars.size(); ++i) {
      Slot slot;
      BindFromEntry(entries[i], &slot);
      ctx_->SetVar(output_vars[i], slot.data);  // Var takes its own ref.
      if (slot.gpu_owned && slot.data.gpu != nullptr) {
        ctx_->gpu_cache_for(slot.data.gpu)
            .Release(slot.data.gpu, ctx_->mutable_now());
      }
      ctx_->lineage().Set(output_vars[i], entries[i]->key);
    }
    ++ctx_->stats().function_hits;
    return true;
  }

  const double start = ctx_->now();
  body();
  const double cost = ctx_->now() - start;

  if (!ctx_->put_enabled()) return false;
  for (size_t i = 0; i < output_vars.size(); ++i) {
    if (!ctx_->HasVar(output_vars[i])) continue;
    const Data& data = ctx_->GetVar(output_vars[i]);
    switch (data.kind) {
      case Data::Kind::kMatrix:
        ctx_->cache().PutHost(keys[i], data.matrix, cost, /*delay=*/1,
                              ctx_->mutable_now());
        break;
      case Data::Kind::kScalar:
        ctx_->cache().PutScalar(keys[i], data.scalar, cost, 1,
                                ctx_->mutable_now());
        break;
      case Data::Kind::kRdd:
        ctx_->cache().PutRdd(keys[i], data.rdd, cost, 1,
                             StorageLevel::kMemoryAndDisk, ctx_->now());
        break;
      case Data::Kind::kGpu:
        ctx_->cache().PutGpu(keys[i], data.gpu, cost, 1, ctx_->now());
        break;
      default:
        break;
    }
    // The function-call lineage becomes the variable's lineage (compaction
    // at the coarse granularity).
    if (ctx_->config().compaction) ctx_->lineage().Set(output_vars[i], keys[i]);
  }
  return false;
}

// --- instruction execution -----------------------------------------------------------

void Executor::ExecuteInstruction(const Instruction& inst,
                                  std::vector<Slot>* slots,
                                  const compiler::BasicBlock& block) {
  // One span per dispatch covering TRACE / REUSE / EXECUTE / PUT; named by
  // opcode so Perfetto groups the instruction mix. The rid comes from the
  // ExecutionContext (set by the serve layer), not the thread-local: the
  // executor has no serve headers, yet its spans still join the request's
  // flow.
  obs::ScopedSpanReq memphis_dispatch_span(
      "exec",
      obs::TraceEnabled() ? obs::Intern("op:" + inst.opcode) : "op",
      ctx_->request().rid, "backend", static_cast<double>(inst.backend));
  Slot& out = (*slots)[inst.output_slot];

  if (inst.opcode == "read") {
    MEMPHIS_CHECK_MSG(ctx_->HasVar(inst.var_name),
                      "read of unbound variable: " + inst.var_name);
    out.data = ctx_->GetVar(inst.var_name);
    out.source_var = inst.var_name;
    LineageItemPtr item = ctx_->lineage().Get(inst.var_name);
    out.lineage = item != nullptr
                      ? item
                      : LineageItem::Leaf("extern", inst.var_name);
    // A block output aliasing an input (e.g. labels passed through);
    // re-binding the source variable to itself would be a no-op.
    BindOutputVars(inst, out, /*skip=*/inst.var_name);
    return;
  }
  if (inst.opcode == "literal") {
    out.data = Data::FromMatrix(MatrixBlock::Create(1, 1, inst.args[0]));
    out.lineage = LineageItem::Leaf("literal", std::to_string(inst.args[0]));
    return;
  }
  if (inst.fused != nullptr) {
    ExecuteFused(inst, slots, block);
    return;
  }

  // TRACE (Figure 4).
  LineageItemPtr item;
  if (ctx_->tracing_enabled()) {
    std::vector<LineageItemPtr> inputs;
    inputs.reserve(inst.input_slots.size());
    for (int slot : inst.input_slots) {
      const LineageItemPtr& lin = (*slots)[slot].lineage;
      inputs.push_back(lin != nullptr ? lin : LineageItem::Leaf("gap", ""));
    }
    item = LineageItem::Create(inst.opcode, LineageData(inst),
                               std::move(inputs));
    ctx_->Charge(ctx_->cost_model().trace_overhead);
    ctx_->stats().trace_time += ctx_->cost_model().trace_overhead;
  }

  // REUSE (Figure 4).
  const bool reusable = item != nullptr && !inst.nondeterministic &&
                        IsReusableOpcode(inst.opcode) &&
                        ctx_->instruction_reuse_enabled(ReuseBackend(inst));
  if (reusable && ctx_->probing_enabled()) {
    double probe = ctx_->cost_model().probe_overhead;
    if (!ctx_->config().compaction) {
      probe += ctx_->cost_model().probe_overhead_deep *
               static_cast<double>(item->height());
    }
    ctx_->Charge(probe);
    ctx_->stats().probe_time += probe;
    CacheEntryPtr entry = ctx_->cache().Reuse(item, ctx_->mutable_now());
    if (entry != nullptr) {
      BindFromEntry(entry, &out);
      // Compaction (Figure 5): the probe key is replaced by the cached key,
      // increasing shared sub-DAGs.
      out.lineage = ctx_->config().compaction ? entry->key : item;
      ++ctx_->stats().reuse_hits;
      BindOutputVars(inst, out);
      return;
    }
  }
  out.lineage = item;

  // EXECUTE.
  switch (inst.backend) {
    case Backend::kCP:
      ExecuteCp(inst, slots);
      ++ctx_->stats().cp_instructions;
      break;
    case Backend::kSpark:
      ExecuteSpark(inst, slots, block);
      ++ctx_->stats().sp_instructions;
      break;
    case Backend::kGpu:
      ExecuteGpu(inst, slots);
      ++ctx_->stats().gpu_instructions;
      break;
  }

  // PUT (Figure 4), subject to delayed caching.
  if (reusable && ctx_->put_enabled()) {
    PutResult(item, &out, inst, block);
  }

  BindOutputVars(inst, out);
}

void Executor::BindOutputVars(const Instruction& inst, const Slot& out,
                              const std::string& skip) {
  const auto bind = [&](const std::string& name) {
    if (name.empty() || name == skip) return;
    ctx_->SetVar(name, out.data);  // Var takes its own ref; the slot's ref
                                   // drops at block end.
    ctx_->lineage().Set(name, out.lineage);
  };
  bind(inst.output_var);
  for (const std::string& name : inst.extra_output_vars) bind(name);
}

void Executor::BindFromEntry(const CacheEntryPtr& entry, Slot* slot) {
  switch (entry->kind) {
    case CacheKind::kHostMatrix:
      slot->data = Data::FromMatrix(entry->host_value);
      break;
    case CacheKind::kScalar:
      slot->data =
          Data::FromMatrix(MatrixBlock::Create(1, 1, entry->scalar_value));
      break;
    case CacheKind::kRdd:
      slot->data = Data::FromRdd(entry->rdd);
      break;
    case CacheKind::kGpu:
      slot->data = Data::FromGpu(entry->gpu);
      slot->gpu_owned = true;  // Reuse() took a live reference.
      break;
  }
}

void Executor::PutResult(const LineageItemPtr& item, Slot* slot,
                         const Instruction& inst,
                         const compiler::BasicBlock& block) {
  const int delay = EffectiveDelay(block);
  const double cost = InstructionCost(inst);
  ctx_->Charge(ctx_->cost_model().cache_put_overhead);
  switch (slot->data.kind) {
    case Data::Kind::kMatrix:
      ctx_->cache().PutHost(item, slot->data.matrix, cost, delay,
                            ctx_->mutable_now());
      break;
    case Data::Kind::kScalar:
      ctx_->cache().PutScalar(item, slot->data.scalar, cost, delay,
                              ctx_->mutable_now());
      break;
    case Data::Kind::kRdd:
      ctx_->cache().PutRdd(item, slot->data.rdd, cost, delay,
                           block.storage_level, ctx_->now());
      break;
    case Data::Kind::kGpu:
      // Scalar device outputs are cached at the host: an 8-byte device
      // pointer has no reuse value worth pinning, and keeping it uncached
      // lets the pool recycle it without a synchronizing cudaMalloc.
      if (slot->data.gpu->buffer->data != nullptr &&
          slot->data.gpu->buffer->data->size() == 1) {
        ctx_->cache().PutScalar(item, slot->data.gpu->buffer->data->AsScalar(),
                                cost, delay, ctx_->mutable_now());
      } else {
        ctx_->cache().PutGpu(item, slot->data.gpu, cost, delay, ctx_->now());
      }
      break;
    default:
      break;
  }
}

double Executor::InstructionCost(const Instruction& inst) const {
  const double bytes = static_cast<double>(inst.out_shape.Bytes());
  switch (inst.backend) {
    case Backend::kCP:
      return ctx_->cost_model().CpOpTime(inst.flops, bytes);
    case Backend::kSpark:
      return ctx_->cost_model().SparkTaskCompute(inst.flops, bytes) +
             ctx_->cost_model().spark_job_overhead;
    case Backend::kGpu:
      return ctx_->cost_model().GpuKernelTime(inst.flops, bytes);
  }
  return 0.0;
}

// --- fused-group dispatch ------------------------------------------------------------

MatrixPtr Executor::EntryMatrix(const CacheEntryPtr& entry) {
  switch (entry->kind) {
    case CacheKind::kHostMatrix:
      return entry->host_value;
    case CacheKind::kScalar:
      return MatrixBlock::Create(1, 1, entry->scalar_value);
    case CacheKind::kRdd: {
      auto result = ctx_->spark().Collect(entry->rdd, ctx_->now());
      ctx_->AdvanceTo(result.completed_at);
      return result.value;
    }
    case CacheKind::kGpu: {
      MatrixPtr value = ctx_->gpu(entry->gpu->device)
                            .CopyD2H(entry->gpu->buffer, ctx_->mutable_now());
      ctx_->gpu_cache_for(entry->gpu).Release(entry->gpu, ctx_->mutable_now());
      return value;
    }
  }
  throw MemphisError("cache entry holds no value");
}

void Executor::ExecuteFused(const Instruction& inst, std::vector<Slot>* slots,
                            const compiler::BasicBlock& block) {
  const compiler::FusedPlan& plan = *inst.fused;
  const size_t num_ops = plan.recipes.size();
  // Per-group span nested under the instruction's "exec" span; carries the
  // serving request's id so composite probes explain under memphis_explain.
  obs::ScopedSpanReq memphis_fusion_span("fusion", "group",
                                         ctx_->request().rid, "ops",
                                         static_cast<double>(num_ops));
  Slot& out = (*slots)[inst.output_slot];

  // TRACE: one item per member, built bottom-up from the external inputs'
  // lineage. The root item is the composite key -- byte-identical to the
  // item unfused execution would produce, so cached results interoperate
  // across fused and unfused runs and the serde never sees a "fused" opcode.
  std::vector<LineageItemPtr> items;
  if (ctx_->tracing_enabled()) {
    items.reserve(num_ops);
    for (const compiler::FusedOpRecipe& recipe : plan.recipes) {
      std::vector<LineageItemPtr> inputs;
      inputs.reserve(recipe.inputs.size());
      for (const kernels::TileRef& ref : recipe.inputs) {
        if (ref.external) {
          const LineageItemPtr& lin =
              (*slots)[inst.input_slots[ref.index]].lineage;
          inputs.push_back(lin != nullptr ? lin
                                          : LineageItem::Leaf("gap", ""));
        } else {
          inputs.push_back(items[ref.index]);
        }
      }
      // Data string: what LineageData() yields for an argless deterministic
      // instruction (members never carry args or a nonce).
      std::ostringstream data;
      for (size_t i = 0; i < recipe.args.size(); ++i) {
        data << (i > 0 ? "," : "") << recipe.args[i];
      }
      items.push_back(LineageItem::Create(recipe.opcode, data.str(),
                                          std::move(inputs)));
    }
    const double traced =
        ctx_->cost_model().trace_overhead * static_cast<double>(num_ops);
    ctx_->Charge(traced);
    ctx_->stats().trace_time += traced;
  }
  const LineageItemPtr root_item = items.empty() ? nullptr : items.back();

  // REUSE, composite: one probe of the root key covers the whole group.
  const bool reusable = root_item != nullptr && !inst.nondeterministic &&
                        ctx_->instruction_reuse_enabled(ReuseBackend(inst));
  const bool probing = reusable && ctx_->probing_enabled();
  auto charge_probe = [&](const LineageItemPtr& item) {
    double probe = ctx_->cost_model().probe_overhead;
    if (!ctx_->config().compaction) {
      probe += ctx_->cost_model().probe_overhead_deep *
               static_cast<double>(item->height());
    }
    ctx_->Charge(probe);
    ctx_->stats().probe_time += probe;
  };
  if (probing) {
    charge_probe(root_item);
    CacheEntryPtr entry = ctx_->cache().Reuse(root_item, ctx_->mutable_now());
    if (entry != nullptr) {
      BindFromEntry(entry, &out);
      out.lineage = ctx_->config().compaction ? entry->key : root_item;
      ++ctx_->stats().reuse_hits;
      ++ctx_->fusion_stats().composite_hits;
      BindOutputVars(inst, out);
      return;
    }
  }
  out.lineage = root_item;

  // REUSE, partial: probe each interior member (the probes an unfused run
  // would have issued). Any hit means part of the group already exists --
  // streaming tiles would recompute it -- so fall back to op-at-a-time
  // execution that binds the cached pieces. Armed kernel faults also force
  // the fallback: the tile interpreter bypasses ApplyKernelFault, and
  // fusion must never mask an injected bug.
  std::vector<CacheEntryPtr> interior(num_ops);
  bool interior_hit = false;
  if (probing) {
    for (size_t i = 0; i + 1 < num_ops; ++i) {
      charge_probe(items[i]);
      interior[i] = ctx_->cache().Reuse(items[i], ctx_->mutable_now());
      interior_hit = interior_hit || interior[i] != nullptr;
    }
  }

  if (interior_hit || KernelFaultArmed()) {
    // The fallback interprets the recipes op-at-a-time instead of running
    // the verified streaming kernel; re-prove the group before trusting it.
    compiler::MaybeVerifyFusedFallback(inst, ctx_->config());
    ++ctx_->fusion_stats().fallback_unfused;
    const int delay = EffectiveDelay(block);
    std::vector<MatrixPtr> values(num_ops);
    for (size_t i = 0; i < num_ops; ++i) {
      const compiler::FusedOpRecipe& recipe = plan.recipes[i];
      if (interior[i] != nullptr) {
        values[i] = EntryMatrix(interior[i]);
        ++ctx_->stats().reuse_hits;
        continue;
      }
      const compiler::OpSpec* spec = compiler::FindOp(recipe.opcode);
      MEMPHIS_CHECK_MSG(spec != nullptr,
                        "unknown fused member opcode: " + recipe.opcode);
      std::vector<MatrixPtr> op_inputs;
      op_inputs.reserve(recipe.inputs.size());
      double bytes = static_cast<double>(recipe.out_shape.Bytes());
      for (const kernels::TileRef& ref : recipe.inputs) {
        MatrixPtr m = ref.external
                          ? SlotMatrix(&(*slots)[inst.input_slots[ref.index]])
                          : values[ref.index];
        bytes += static_cast<double>(m->SizeInBytes());
        op_inputs.push_back(std::move(m));
      }
      values[i] = ApplyKernelFault(recipe.opcode,
                                   spec->exec(op_inputs, recipe.args));
      const double cost = ctx_->cost_model().CpOpTime(recipe.flops, bytes);
      ctx_->Charge(cost);
      // Interior results materialized here behave exactly like unfused
      // results: cached (subject to the delay factor) for later partial
      // reuse. The root goes through the common PutResult below.
      if (i + 1 < num_ops && reusable && ctx_->put_enabled()) {
        ctx_->Charge(ctx_->cost_model().cache_put_overhead);
        ctx_->cache().PutHost(items[i], values[i], cost, delay,
                              ctx_->mutable_now());
      }
    }
    out.data = Data::FromMatrix(values.back());
  } else {
    // EXECUTE: one streaming pass over the external inputs. Charging a
    // single instruction's worth of memory traffic for the whole group is
    // fusion's simulated-time win (the flop total is unchanged); the real
    // win is measured by bench_fusion on the wall clock.
    std::vector<MatrixPtr> inputs;
    inputs.reserve(inst.input_slots.size());
    double bytes = static_cast<double>(inst.out_shape.Bytes());
    for (int slot : inst.input_slots) {
      MatrixPtr m = SlotMatrix(&(*slots)[slot]);
      bytes += static_cast<double>(m->SizeInBytes());
      inputs.push_back(std::move(m));
    }
    kernels::FusedKernelExecutor fused_exec(&plan.program);
    out.data = Data::FromMatrix(fused_exec.Run(inputs));
    ctx_->Charge(ctx_->cost_model().CpOpTime(inst.flops, bytes));
    ++ctx_->fusion_stats().groups_executed;
  }
  ++ctx_->stats().cp_instructions;

  // PUT: the composite key caches the group output exactly as an unfused
  // root would be cached.
  if (reusable && ctx_->put_enabled()) {
    PutResult(root_item, &out, inst, block);
  }
  BindOutputVars(inst, out);
}

// --- CP dispatch ---------------------------------------------------------------------

MatrixPtr Executor::SlotMatrix(Slot* slot) {
  Data& data = slot->data;
  if (data.future_ready >= 0.0) {
    ctx_->AdvanceTo(data.future_ready);
    data.future_ready = -1.0;
    ++ctx_->stats().futures_waited;
  }
  if (data.matrix != nullptr) return data.matrix;
  switch (data.kind) {
    case Data::Kind::kScalar:
      data.matrix = MatrixBlock::Create(1, 1, data.scalar);
      return data.matrix;
    case Data::Kind::kGpu: {
      // Defensive fallback: compiler normally inserts an explicit d2h.
      data.matrix = ctx_->gpu(data.gpu->device)
                        .CopyD2H(data.gpu->buffer, ctx_->mutable_now());
      return data.matrix;
    }
    case Data::Kind::kRdd: {
      auto result = ctx_->spark().Collect(data.rdd, ctx_->now());
      ctx_->AdvanceTo(result.completed_at);
      data.matrix = result.value;
      return data.matrix;
    }
    default:
      throw MemphisError("slot holds no materializable value");
  }
}

void Executor::ExecuteCp(const Instruction& inst, std::vector<Slot>* slots) {
  Slot& out = (*slots)[inst.output_slot];
  const compiler::OpSpec* spec = compiler::FindOp(inst.opcode);
  MEMPHIS_CHECK_MSG(spec != nullptr, "unknown CP opcode: " + inst.opcode);
  std::vector<MatrixPtr> inputs;
  inputs.reserve(inst.input_slots.size());
  double bytes = static_cast<double>(inst.out_shape.Bytes());
  for (int slot : inst.input_slots) {
    MatrixPtr m = SlotMatrix(&(*slots)[slot]);
    bytes += static_cast<double>(m->SizeInBytes());
    inputs.push_back(std::move(m));
  }
  MatrixPtr result =
      ApplyKernelFault(inst.opcode, spec->exec(inputs, inst.args));
  ctx_->Charge(ctx_->cost_model().CpOpTime(inst.flops, bytes));
  out.data = Data::FromMatrix(std::move(result));
}

// --- GPU dispatch ---------------------------------------------------------------------

void Executor::ExecuteGpu(const Instruction& inst, std::vector<Slot>* slots) {
  Slot& out = (*slots)[inst.output_slot];

  if (inst.opcode == "h2d") {
    Slot& in = (*slots)[inst.input_slots[0]];
    MatrixPtr value = SlotMatrix(&in);
    const int device = ctx_->LeastLoadedGpu();
    GpuCacheObjectPtr object = ctx_->gpu_cache(device).Allocate(
        value->SizeInBytes(), ctx_->mutable_now());
    ctx_->gpu(device).CopyH2D(object->buffer, value, ctx_->mutable_now());
    out.data = Data::FromGpu(std::move(object));
    out.data.matrix = value;  // Host copy remains valid.
    out.gpu_owned = true;
    return;
  }
  if (inst.opcode == "d2h") {
    Slot& in = (*slots)[inst.input_slots[0]];
    MEMPHIS_CHECK_MSG(in.data.gpu != nullptr, "d2h of non-GPU value");
    const auto& buffer = in.data.gpu->buffer;
    MEMPHIS_CHECK_MSG(buffer->data != nullptr, "d2h of empty device buffer");
    auto& gpu = ctx_->gpu(in.data.gpu->device);
    if (inst.async) {
      // Prefetch: the DMA transfer is enqueued on the stream; the host
      // continues and consumers wait on the future (Section 5.1).
      const double transfer =
          ctx_->cost_model().D2HTime(static_cast<double>(buffer->bytes));
      const double done = gpu.stream().Launch(ctx_->now(), transfer);
      out.data = Data::FromMatrix(buffer->data);
      out.data.future_ready = done;
      ctx_->Charge(ctx_->cost_model().gpu_launch_overhead);
    } else {
      MatrixPtr value = gpu.CopyD2H(buffer, ctx_->mutable_now());
      out.data = Data::FromMatrix(std::move(value));
    }
    return;
  }

  // Generic device kernel: run where the first device-resident input lives
  // (data locality); fresh chains go to the least-loaded device.
  const compiler::OpSpec* spec = compiler::FindOp(inst.opcode);
  MEMPHIS_CHECK_MSG(spec != nullptr && spec->exec != nullptr,
                    "unknown GPU opcode: " + inst.opcode);
  int device = -1;
  for (int slot_index : inst.input_slots) {
    const Slot& in = (*slots)[slot_index];
    if (in.data.gpu != nullptr) {
      device = in.data.gpu->device;
      break;
    }
  }
  if (device < 0) device = ctx_->LeastLoadedGpu();
  auto& gpu = ctx_->gpu(device);

  std::vector<MatrixPtr> inputs;
  inputs.reserve(inst.input_slots.size());
  double bytes = static_cast<double>(inst.out_shape.Bytes());
  for (int slot_index : inst.input_slots) {
    Slot& in = (*slots)[slot_index];
    MatrixPtr shadow;
    if (in.data.gpu != nullptr) {
      shadow = in.data.gpu->buffer->data;
      MEMPHIS_CHECK_MSG(shadow != nullptr, "GPU input has no contents");
      if (in.data.gpu->device != device) {
        // Peer transfer onto the kernel's device (charged like an H2D).
        const double transfer = ctx_->cost_model().H2DTime(
            static_cast<double>(in.data.gpu->buffer->bytes));
        ctx_->AdvanceTo(gpu.stream().Launch(ctx_->now(), transfer));
      }
    } else {
      shadow = SlotMatrix(&in);  // Scalar forwarded into the kernel.
    }
    bytes += static_cast<double>(shadow->SizeInBytes());
    inputs.push_back(std::move(shadow));
  }
  GpuCacheObjectPtr object = ctx_->gpu_cache(device).Allocate(
      inst.out_shape.Bytes(), ctx_->mutable_now());
  MatrixPtr result =
      ApplyKernelFault(inst.opcode, spec->exec(inputs, inst.args));
  gpu.LaunchKernel(object->buffer, std::move(result), inst.flops, bytes,
                   ctx_->mutable_now());
  out.data = Data::FromGpu(std::move(object));
  out.gpu_owned = true;
}

// --- Spark dispatch ---------------------------------------------------------------------

int Executor::ChoosePartitions(size_t bytes) const {
  // HDFS-block-sized splits (scaled with the memory scale), capped at 4x the
  // cluster's core count and floored at 2 to stay genuinely distributed.
  const auto block = static_cast<size_t>(
      128.0 * 1024.0 * 1024.0 * ctx_->config().mem_scale);
  const size_t by_size = CeilDiv(bytes, std::max<size_t>(1, block));
  const size_t cap =
      static_cast<size_t>(ctx_->spark().total_cores()) * 4;
  return static_cast<int>(std::clamp<size_t>(by_size, 2, cap));
}

spark::RddPtr Executor::SlotRdd(Slot* slot) {
  Data& data = slot->data;
  if (data.rdd != nullptr) return data.rdd;
  MatrixPtr value = SlotMatrix(slot);
  data.rdd = ctx_->spark().Parallelize(
      "par", value, ChoosePartitions(value->SizeInBytes()));
  // Keep the distributed handle on the source variable so subsequent blocks
  // reuse the same RDD instead of re-parallelizing.
  if (!slot->source_var.empty() && ctx_->HasVar(slot->source_var)) {
    Data updated = ctx_->GetVar(slot->source_var);
    if (updated.matrix == value && updated.rdd == nullptr) {
      updated.rdd = data.rdd;
      ctx_->SetVar(slot->source_var, std::move(updated));
    }
  }
  return data.rdd;
}

void Executor::ExecuteSpark(const Instruction& inst, std::vector<Slot>* slots,
                            const compiler::BasicBlock& block) {
  Slot& out = (*slots)[inst.output_slot];
  auto& sc = ctx_->spark();
  const auto& cm = ctx_->cost_model();
  ctx_->Charge(cm.cp_inst_overhead);  // Driver-side interpretation.

  if (inst.opcode == "parallelize") {
    Slot& in = (*slots)[inst.input_slots[0]];
    out.data = in.data;
    out.data.rdd = SlotRdd(&in);
    out.data.kind = Data::Kind::kRdd;
    return;
  }
  if (inst.opcode == "bcast") {
    Slot& in = (*slots)[inst.input_slots[0]];
    MatrixPtr value = SlotMatrix(&in);
    out.data = Data::FromMatrix(value);
    out.data.broadcast = sc.CreateBroadcast(value);
    // Serialization/partitioning into 4MB chunks happens off the main
    // thread when the rewrite marked the op asynchronous.
    const double serialize =
        static_cast<double>(value->SizeInBytes()) / cm.cpu_mem_bandwidth;
    if (inst.async) {
      ctx_->async_pool().Reserve(ctx_->now(), serialize, "bcast-serialize");
    } else {
      ctx_->Charge(serialize);
    }
    return;
  }
  if (inst.opcode == "checkpoint") {
    Slot& in = (*slots)[inst.input_slots[0]];
    spark::RddPtr rdd = SlotRdd(&in);
    sc.Persist(rdd, block.storage_level);
    out.data = Data::FromRdd(rdd);
    return;
  }
  if (inst.opcode == "collect") {
    Slot& in = (*slots)[inst.input_slots[0]];
    if (in.data.matrix != nullptr && in.data.rdd == nullptr) {
      out.data = Data::FromMatrix(in.data.matrix);  // Already local.
      return;
    }
    spark::RddPtr rdd = SlotRdd(&in);
    auto result = sc.Collect(rdd, ctx_->now());
    out.data = Data::FromMatrix(result.value);
    if (inst.async) {
      out.data.future_ready = result.completed_at;
    } else {
      ctx_->AdvanceTo(result.completed_at);
    }
    return;
  }

  // --- distributed transformations (lazy: build RDD nodes) -------------------
  const size_t out_rows = inst.out_shape.rows;
  const size_t out_cols = inst.out_shape.cols;
  spark::RddPtr result;

  auto narrow1 = [&](const spark::RddPtr& parent, spark::Rdd::NarrowFn fn) {
    auto rdd = spark::Rdd::Narrow(InstName(inst), {parent}, out_rows, out_cols,
                                  std::move(fn));
    rdd->set_per_partition_flops(inst.flops / rdd->num_partitions());
    return rdd;
  };

  const compiler::OpSpec* spec = compiler::FindOp(inst.opcode);
  MEMPHIS_CHECK_MSG(spec != nullptr, "unknown SP opcode: " + inst.opcode);

  if (inst.opcode == "tsmm") {
    spark::RddPtr x = SlotRdd(&(*slots)[inst.input_slots[0]]);
    result = spark::Rdd::Aggregate(
        InstName(inst), x, out_rows, out_cols,
        [](const spark::Partition& part) {
          auto xt = kernels::Transpose(*part.data);
          return kernels::MatMult(*xt, *part.data);
        });
    result->set_per_partition_flops(inst.flops / x->num_partitions());
  } else if (inst.opcode == "tsmm2") {
    // t(A) %*% B over row-aligned operands: per-partition partials, then an
    // add-aggregate. A local A is sliced to each partition's rows.
    Slot& a_slot = (*slots)[inst.input_slots[0]];
    Slot& b_slot = (*slots)[inst.input_slots[1]];
    const bool a_dist = a_slot.data.rdd != nullptr;
    const bool b_dist = b_slot.data.rdd != nullptr;
    if (a_dist && b_dist) {
      spark::RddPtr a = a_slot.data.rdd;
      spark::RddPtr b = b_slot.data.rdd;
      auto partial = spark::Rdd::Narrow(
          InstName(inst) + ".partial", {a, b}, out_rows, out_cols,
          [](const std::vector<const spark::Partition*>& in) {
            auto at = kernels::Transpose(*in[0]->data);
            return kernels::MatMult(*at, *in[1]->data);
          });
      partial->set_per_partition_flops(inst.flops / a->num_partitions());
      result = spark::Rdd::Aggregate(
          InstName(inst), partial, out_rows, out_cols,
          [](const spark::Partition& part) { return part.data; });
    } else {
      Slot& dist = a_dist ? a_slot : b_slot;
      Slot& local = a_dist ? b_slot : a_slot;
      MatrixPtr m = SlotMatrix(&local);
      if (local.data.broadcast == nullptr ||
          local.data.broadcast->destroyed()) {
        local.data.broadcast = sc.CreateBroadcast(m);
      }
      const bool local_is_left = !a_dist;
      // SlotRdd (not .rdd) so a fully-local operand pair -- possible when
      // CSE folds both inputs onto one unparallelized hop -- is promoted to
      // an RDD instead of dereferencing a null handle.
      spark::RddPtr x = SlotRdd(&dist);
      result = spark::Rdd::Aggregate(
          InstName(inst), x, out_rows, out_cols,
          [m, local_is_left](const spark::Partition& part) {
            MatrixPtr local_rows =
                kernels::Slice(*m, part.row_lo, part.row_hi, 0, m->cols());
            if (local_is_left) {
              auto lt = kernels::Transpose(*local_rows);
              return kernels::MatMult(*lt, *part.data);
            }
            auto pt = kernels::Transpose(*part.data);
            return kernels::MatMult(*pt, *local_rows);
          });
      result->set_per_partition_flops(inst.flops / x->num_partitions());
      result->AddBroadcastDep(local.data.broadcast);
    }
  } else if (inst.opcode == "matmult") {
    Slot& left = (*slots)[inst.input_slots[0]];
    Slot& right = (*slots)[inst.input_slots[1]];
    const bool left_dist = left.data.rdd != nullptr;
    const bool right_dist = right.data.rdd != nullptr;
    if (left_dist && !right_dist) {
      // mapmm: broadcast the small right-hand side (e.g. X %*% t(H)).
      MatrixPtr w = SlotMatrix(&right);
      if (right.data.broadcast == nullptr ||
          right.data.broadcast->destroyed()) {
        right.data.broadcast = sc.CreateBroadcast(w);
      }
      result = narrow1(left.data.rdd,
                       [w](const std::vector<const spark::Partition*>& in) {
                         return kernels::MatMult(*in[0]->data, *w);
                       });
      result->AddBroadcastDep(right.data.broadcast);
    } else if (!left_dist && right_dist) {
      // Broadcast-based left multiply, e.g. y^T X (Figure 2(b)): slice the
      // broadcast columns to the partition's rows, sum the partials.
      MatrixPtr y = SlotMatrix(&left);
      if (left.data.broadcast == nullptr || left.data.broadcast->destroyed()) {
        left.data.broadcast = sc.CreateBroadcast(y);
      }
      const size_t total_rows = right.data.rdd->rows();
      spark::RddPtr x = right.data.rdd;
      result = spark::Rdd::Aggregate(
          InstName(inst), x, out_rows, out_cols,
          [y, total_rows](const spark::Partition& part) {
            MatrixPtr lhs = y;
            if (y->cols() == total_rows) {
              lhs = kernels::Slice(*y, 0, y->rows(), part.row_lo, part.row_hi);
            }
            return kernels::MatMult(*lhs, *part.data);
          });
      result->set_per_partition_flops(inst.flops / x->num_partitions());
      result->AddBroadcastDep(left.data.broadcast);
    } else if (right.data.rdd != nullptr &&
               right.data.rdd->num_partitions() == 1) {
      // Right side is a small single-partition RDD (aggregate output):
      // replicate it to every task, broadcast-style.
      spark::RddPtr a = SlotRdd(&left);
      spark::RddPtr b = right.data.rdd;
      result = spark::Rdd::Narrow(
          InstName(inst), {a, b}, out_rows, out_cols,
          [](const std::vector<const spark::Partition*>& in) {
            return kernels::MatMult(*in[0]->data, *in[1]->data);
          });
      result->set_per_partition_flops(inst.flops / a->num_partitions());
    } else {
      // Both genuinely distributed: a repartition join is out of scope for
      // the row-partitioned model, so collect the (smaller) right side to
      // the driver and fall back to a broadcast multiply -- exactly what
      // SystemDS does when one side fits in the driver.
      spark::RddPtr a = SlotRdd(&left);
      auto collected = sc.Collect(SlotRdd(&right), ctx_->now());
      ctx_->AdvanceTo(collected.completed_at);
      MatrixPtr w = collected.value;
      right.data.matrix = w;
      if (right.data.broadcast == nullptr ||
          right.data.broadcast->destroyed()) {
        right.data.broadcast = sc.CreateBroadcast(w);
      }
      result = narrow1(a,
                       [w](const std::vector<const spark::Partition*>& in) {
                         return kernels::MatMult(*in[0]->data, *w);
                       });
      result->AddBroadcastDep(right.data.broadcast);
    }
  } else if (inst.opcode == "colSums" || inst.opcode == "sum" ||
             inst.opcode == "mean" || inst.opcode == "min_agg" ||
             inst.opcode == "max_agg") {
    spark::RddPtr x = SlotRdd(&(*slots)[inst.input_slots[0]]);
    const std::string op = inst.opcode;
    const double denom = static_cast<double>(x->rows() * x->cols());
    kernels::BinaryOp combine = kernels::BinaryOp::kAdd;
    spark::Rdd::MapFn map_fn;
    if (op == "colSums") {
      map_fn = [](const spark::Partition& part) {
        return kernels::ColSums(*part.data);
      };
    } else if (op == "sum") {
      map_fn = [](const spark::Partition& part) {
        return MatrixBlock::Create(1, 1, kernels::Sum(*part.data));
      };
    } else if (op == "mean") {
      map_fn = [denom](const spark::Partition& part) {
        return MatrixBlock::Create(1, 1, kernels::Sum(*part.data) / denom);
      };
    } else if (op == "min_agg") {
      combine = kernels::BinaryOp::kMin;
      map_fn = [](const spark::Partition& part) {
        return MatrixBlock::Create(1, 1, kernels::Min(*part.data));
      };
    } else {  // max_agg
      combine = kernels::BinaryOp::kMax;
      map_fn = [](const spark::Partition& part) {
        return MatrixBlock::Create(1, 1, kernels::Max(*part.data));
      };
    }
    result = spark::Rdd::Aggregate(InstName(inst), x, out_rows, out_cols,
                                   std::move(map_fn), combine);
    result->set_per_partition_flops(inst.flops / x->num_partitions());
  } else if (inst.opcode == "scale" || inst.opcode == "minmax" ||
             inst.opcode == "imputeMean") {
    result = ExecuteSparkStatsOp(inst, slots);
  } else if (spec->arity == 2) {
    // Elementwise binary: RDD-RDD zip or RDD with a captured local operand.
    Slot& a = (*slots)[inst.input_slots[0]];
    Slot& b = (*slots)[inst.input_slots[1]];
    const bool a_dist = a.data.rdd != nullptr;
    const bool b_dist = b.data.rdd != nullptr;
    auto exec = spec->exec;
    const auto& args = inst.args;
    if (a_dist && b_dist) {
      spark::RddPtr ra = a.data.rdd;
      spark::RddPtr rb = b.data.rdd;
      result = spark::Rdd::Narrow(
          InstName(inst), {ra, rb}, out_rows, out_cols,
          [exec, args](const std::vector<const spark::Partition*>& in) {
            return exec({in[0]->data, in[1]->data}, args);
          });
      result->set_per_partition_flops(
          inst.flops / std::max(1, result->num_partitions()));
    } else {
      Slot& dist = a_dist ? a : b;
      Slot& local = a_dist ? b : a;
      MatrixPtr m = SlotMatrix(&local);
      const size_t total_rows = dist.data.rdd->rows();
      const bool local_is_left = !a_dist;
      result = narrow1(
          dist.data.rdd,
          [exec, args, m, total_rows, local_is_left](
              const std::vector<const spark::Partition*>& in) {
            MatrixPtr operand = AlignOperand(m, *in[0], total_rows);
            return local_is_left ? exec({operand, in[0]->data}, args)
                                 : exec({in[0]->data, operand}, args);
          });
      if (m->SizeInBytes() >= 4096) {
        if (local.data.broadcast == nullptr ||
            local.data.broadcast->destroyed()) {
          local.data.broadcast = sc.CreateBroadcast(m);
        }
        result->AddBroadcastDep(local.data.broadcast);
      }
    }
  } else {
    // Unary / row-wise narrow operator.
    spark::RddPtr x = SlotRdd(&(*slots)[inst.input_slots[0]]);
    auto exec = spec->exec;
    const auto& args = inst.args;
    result = narrow1(x,
                     [exec, args](const std::vector<const spark::Partition*>&
                                      in) { return exec({in[0]->data}, args); });
  }

  MEMPHIS_CHECK(result != nullptr);
  out.data = Data::FromRdd(result);

  // Eager-caching baseline (Figure 2(c)): persist + materialize immediately
  // after every transformation.
  if (ctx_->config().spark_eager_caching) {
    sc.Persist(result, StorageLevel::kMemoryAndDisk);
    auto count = sc.Count(result, ctx_->now());
    ctx_->AdvanceTo(count.completed_at);
  }
}

spark::RddPtr Executor::ExecuteSparkStatsOp(const Instruction& inst,
                                            std::vector<Slot>* slots) {
  // Two-phase distributed primitives: a stats job (aggregate + collect of a
  // few rows) followed by a narrow apply over the partitions.
  auto& sc = ctx_->spark();
  spark::RddPtr x = SlotRdd(&(*slots)[inst.input_slots[0]]);
  const size_t cols = x->cols();
  const size_t rows = x->rows();
  spark::RddPtr stats_rdd;
  if (inst.opcode == "minmax") {
    stats_rdd = spark::Rdd::Aggregate(
        InstName(inst) + ".stats", x, 2, cols,
        [](const spark::Partition& part) {
          auto mins = kernels::ColMins(*part.data);
          auto maxs = kernels::ColMaxs(*part.data);
          auto neg = kernels::Unary(kernels::UnaryOp::kNeg, *maxs);
          return kernels::RBind(*mins, *neg);  // min(-max) == -max(max).
        },
        kernels::BinaryOp::kMin);
  } else if (inst.opcode == "scale") {
    stats_rdd = spark::Rdd::Aggregate(
        InstName(inst) + ".stats", x, 3, cols,
        [](const spark::Partition& part) {
          auto sums = kernels::ColSums(*part.data);
          auto squares =
              kernels::Binary(kernels::BinaryOp::kMul, *part.data, *part.data);
          auto sq_sums = kernels::ColSums(*squares);
          auto count = MatrixBlock::Create(
              1, part.data->cols(), static_cast<double>(part.data->rows()));
          return kernels::RBind(*kernels::RBind(*sums, *sq_sums), *count);
        });
  } else {  // imputeMean: NaN-aware sums and counts.
    stats_rdd = spark::Rdd::Aggregate(
        InstName(inst) + ".stats", x, 2, cols,
        [](const spark::Partition& part) {
          const MatrixBlock& tile = *part.data;
          auto out = std::make_shared<MatrixBlock>(2, tile.cols(), 0.0);
          for (size_t r = 0; r < tile.rows(); ++r) {
            for (size_t c = 0; c < tile.cols(); ++c) {
              const double v = tile.At(r, c);
              if (!kernels::IsMissing(v)) {
                out->At(0, c) += v;
                out->At(1, c) += 1.0;
              }
            }
          }
          return out;
        });
  }
  stats_rdd->set_per_partition_flops(
      static_cast<double>(rows * cols) / x->num_partitions() * 3.0);
  auto stats = sc.Collect(stats_rdd, ctx_->now());
  ctx_->AdvanceTo(stats.completed_at);
  MatrixPtr s = stats.value;

  spark::Rdd::NarrowFn apply;
  if (inst.opcode == "minmax") {
    auto mins = kernels::Slice(*s, 0, 1, 0, cols);
    auto negmax = kernels::Slice(*s, 1, 2, 0, cols);
    auto maxs = kernels::Unary(kernels::UnaryOp::kNeg, *negmax);
    apply = [mins, maxs](const std::vector<const spark::Partition*>& in) {
      auto shifted =
          kernels::Binary(kernels::BinaryOp::kSub, *in[0]->data, *mins);
      auto range = kernels::Binary(kernels::BinaryOp::kSub, *maxs, *mins);
      auto safe = kernels::Binary(kernels::BinaryOp::kMax, *range,
                                  *MatrixBlock::Create(1, 1, 1e-12));
      return kernels::Binary(kernels::BinaryOp::kDiv, *shifted, *safe);
    };
  } else if (inst.opcode == "scale") {
    auto sums = kernels::Slice(*s, 0, 1, 0, cols);
    auto sq_sums = kernels::Slice(*s, 1, 2, 0, cols);
    auto counts = kernels::Slice(*s, 2, 3, 0, cols);
    auto means = kernels::Binary(kernels::BinaryOp::kDiv, *sums, *counts);
    auto ex2 = kernels::Binary(kernels::BinaryOp::kDiv, *sq_sums, *counts);
    auto mean_sq = kernels::Binary(kernels::BinaryOp::kMul, *means, *means);
    auto var = kernels::Binary(kernels::BinaryOp::kSub, *ex2, *mean_sq);
    auto var_safe = kernels::Binary(kernels::BinaryOp::kMax, *var,
                                    *MatrixBlock::Create(1, 1, 1e-24));
    auto sd = kernels::Unary(kernels::UnaryOp::kSqrt, *var_safe);
    apply = [means, sd](const std::vector<const spark::Partition*>& in) {
      auto centered =
          kernels::Binary(kernels::BinaryOp::kSub, *in[0]->data, *means);
      return kernels::Binary(kernels::BinaryOp::kDiv, *centered, *sd);
    };
  } else {  // imputeMean.
    auto sums = kernels::Slice(*s, 0, 1, 0, cols);
    auto counts = kernels::Slice(*s, 1, 2, 0, cols);
    auto safe_counts = kernels::Binary(kernels::BinaryOp::kMax, *counts,
                                       *MatrixBlock::Create(1, 1, 1.0));
    auto means = kernels::Binary(kernels::BinaryOp::kDiv, *sums, *safe_counts);
    apply = [means](const std::vector<const spark::Partition*>& in) {
      const MatrixBlock& tile = *in[0]->data;
      auto out = std::make_shared<MatrixBlock>(tile.rows(), tile.cols(), 0.0);
      for (size_t r = 0; r < tile.rows(); ++r) {
        for (size_t c = 0; c < tile.cols(); ++c) {
          const double v = tile.At(r, c);
          out->At(r, c) = kernels::IsMissing(v) ? means->At(0, c) : v;
        }
      }
      return out;
    };
  }
  auto result = spark::Rdd::Narrow(InstName(inst), {x}, rows, cols,
                                   std::move(apply));
  result->set_per_partition_flops(inst.flops / x->num_partitions());
  return result;
}

}  // namespace memphis
