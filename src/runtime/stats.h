#ifndef MEMPHIS_RUNTIME_STATS_H_
#define MEMPHIS_RUNTIME_STATS_H_

#include <cstdint>
#include <string>

namespace memphis {

/// Runtime counters covering the executor's own work; backend components
/// (SparkContext, GpuContext, LineageCache, ...) expose their own stats.
struct ExecStats {
  int64_t cp_instructions = 0;
  int64_t sp_instructions = 0;
  int64_t gpu_instructions = 0;
  int64_t reuse_hits = 0;
  int64_t function_hits = 0;
  int64_t function_calls = 0;
  int64_t futures_waited = 0;
  int64_t blocks_executed = 0;
  int64_t recompilations = 0;
  double trace_time = 0.0;
  double probe_time = 0.0;

  int64_t TotalInstructions() const {
    return cp_instructions + sp_instructions + gpu_instructions;
  }

  std::string Summary() const;
};

}  // namespace memphis

#endif  // MEMPHIS_RUNTIME_STATS_H_
