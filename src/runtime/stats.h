#ifndef MEMPHIS_RUNTIME_STATS_H_
#define MEMPHIS_RUNTIME_STATS_H_

#include <cstdint>

#include "obs/metrics.h"

namespace memphis {

/// Runtime counters covering the executor's own work; backend components
/// (SparkContext, GpuContext, LineageCache, ...) expose their own stats.
///
/// Fields are obs::Counter / obs::Gauge rather than plain int64_t/double:
/// Spark instruction bodies run on pool threads while the driver thread
/// mutates the same struct, so updates must be atomic. The primitives
/// convert implicitly back to their value type, keeping every existing
/// `stats().x` read site unchanged. RegisterMetrics() names each field in a
/// MetricsRegistry under "exec.*" for export.
struct ExecStats {
  obs::Counter cp_instructions;
  obs::Counter sp_instructions;
  obs::Counter gpu_instructions;
  obs::Counter reuse_hits;
  obs::Counter function_hits;
  obs::Counter function_calls;
  obs::Counter futures_waited;
  obs::Counter blocks_executed;
  obs::Counter recompilations;
  obs::Gauge trace_time;
  obs::Gauge probe_time;

  int64_t TotalInstructions() const {
    return cp_instructions + sp_instructions + gpu_instructions;
  }

  /// Registers every field under "exec.<field>" in `registry`. The registry
  /// stores raw pointers; this struct must outlive it or be deregistered by
  /// destroying the registry first (ExecutionContext owns both).
  void RegisterMetrics(obs::MetricsRegistry* registry);
};

/// Operator-fusion counters (registered under "fusion.*"). Compile-side
/// counters (groups_formed / ops_fused) bump on every fresh block compile;
/// the rest count runtime outcomes per fused-group dispatch.
struct FusionStats {
  obs::Counter groups_formed;     // Fused groups emitted by the compiler.
  obs::Counter ops_fused;         // Member operators across those groups.
  obs::Counter groups_executed;   // Fused groups run tile-at-a-time.
  obs::Counter composite_hits;    // Whole-group reuse via the composite key.
  obs::Counter fallback_unfused;  // Groups executed op-at-a-time instead
                                  // (interior cache hit or armed fault).

  void RegisterMetrics(obs::MetricsRegistry* registry);
};

}  // namespace memphis

#endif  // MEMPHIS_RUNTIME_STATS_H_
