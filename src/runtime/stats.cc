#include "runtime/stats.h"

#include <sstream>

namespace memphis {

std::string ExecStats::Summary() const {
  std::ostringstream oss;
  oss << "instructions: CP=" << cp_instructions << " SP=" << sp_instructions
      << " GPU=" << gpu_instructions << ", hits=" << reuse_hits
      << " (func=" << function_hits << "), blocks=" << blocks_executed;
  return oss.str();
}

}  // namespace memphis
