#include "runtime/stats.h"

namespace memphis {

void ExecStats::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->Register("exec.cp_instructions", &cp_instructions);
  registry->Register("exec.sp_instructions", &sp_instructions);
  registry->Register("exec.gpu_instructions", &gpu_instructions);
  registry->Register("exec.reuse_hits", &reuse_hits);
  registry->Register("exec.function_hits", &function_hits);
  registry->Register("exec.function_calls", &function_calls);
  registry->Register("exec.futures_waited", &futures_waited);
  registry->Register("exec.blocks_executed", &blocks_executed);
  registry->Register("exec.recompilations", &recompilations);
  registry->Register("exec.trace_time_s", &trace_time);
  registry->Register("exec.probe_time_s", &probe_time);
}

void FusionStats::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->Register("fusion.groups_formed", &groups_formed);
  registry->Register("fusion.ops_fused", &ops_fused);
  registry->Register("fusion.groups_executed", &groups_executed);
  registry->Register("fusion.composite_hits", &composite_hits);
  registry->Register("fusion.fallback_unfused", &fallback_unfused);
}

}  // namespace memphis
