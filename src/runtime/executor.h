#ifndef MEMPHIS_RUNTIME_EXECUTOR_H_
#define MEMPHIS_RUNTIME_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "compiler/program.h"
#include "runtime/execution_context.h"

namespace memphis {

/// The multi-backend operator scheduler and interpreter. Executes compiled
/// basic blocks instruction by instruction with the lineage-based reuse loop
/// of Figure 4 wrapped around every operator:
///
///   item  = TRACE(inst)
///   entry = REUSE(item)          -- probe; on hit bind output and skip
///   out   = EXECUTE(inst)        -- CP / Spark / GPU dispatch
///   PUT(item, out)               -- subject to the block's delay factor
///
/// Also provides multi-level (function) reuse (Section 3.3) and program
/// execution over the block hierarchy (for / evict blocks).
class Executor {
 public:
  explicit Executor(ExecutionContext* ctx) : ctx_(ctx) {}

  /// Applies the program-level rewrites (once) and runs all blocks.
  void RunProgram(compiler::Program& program);

  /// Compiles (with per-shape caching) and runs one basic block.
  void RunBlock(compiler::BasicBlock& block);

  /// Multi-level reuse: if all outputs of `name(arg_vars...)` are cached
  /// under the function-call lineage, binds them and skips `body`; otherwise
  /// runs `body` and caches the outputs. Returns true on a full reuse hit.
  /// Only deterministic functions may be passed here.
  bool CallFunction(const std::string& name,
                    const std::vector<std::string>& arg_vars,
                    const std::vector<std::string>& output_vars,
                    const std::function<void()>& body);

  ExecutionContext& ctx() { return *ctx_; }

 private:
  struct Slot {
    Data data;
    LineageItemPtr lineage;
    bool gpu_owned = false;      // This slot owns one GPU reference.
    std::string source_var;      // Set for read slots: conversions (e.g. a
                                 // parallelized RDD handle) write back so the
                                 // variable keeps all its representations.
  };

  void RunBlockList(const std::vector<compiler::BlockPtr>& blocks);
  compiler::CompileResult* CompileBlock(compiler::BasicBlock& block);
  int EffectiveDelay(const compiler::BasicBlock& block) const;

  void ExecuteInstruction(const compiler::Instruction& inst,
                          std::vector<Slot>* slots,
                          const compiler::BasicBlock& block);

  /// Fused-group dispatch (compiler/fusion.h): runs the whole TRACE / REUSE
  /// / EXECUTE / PUT loop for a "fused" instruction. Rebuilds every member's
  /// lineage item, probes the root (the composite key) and then each
  /// interior; an interior hit or an armed kernel fault falls back to
  /// op-at-a-time execution, otherwise the group streams tile-at-a-time
  /// through kernels::FusedKernelExecutor.
  void ExecuteFused(const compiler::Instruction& inst,
                    std::vector<Slot>* slots,
                    const compiler::BasicBlock& block);

  /// Host matrix view of a cache entry (collects RDDs, copies device buffers
  /// back and releases the reference Reuse() took). Used by the fused
  /// fallback path, which consumes interior hits as host values.
  MatrixPtr EntryMatrix(const CacheEntryPtr& entry);

  // Backend dispatch. Each fills slots[inst.output_slot].
  void ExecuteCp(const compiler::Instruction& inst, std::vector<Slot>* slots);
  void ExecuteSpark(const compiler::Instruction& inst,
                    std::vector<Slot>* slots,
                    const compiler::BasicBlock& block);
  void ExecuteGpu(const compiler::Instruction& inst, std::vector<Slot>* slots);

  /// Two-phase distributed statistics primitives (scale/minmax/imputeMean):
  /// an aggregate+collect stats job followed by a narrow apply.
  spark::RddPtr ExecuteSparkStatsOp(const compiler::Instruction& inst,
                                    std::vector<Slot>* slots);

  /// Host matrix view of a slot (waits on futures; lazy remote fetches are a
  /// defensive fallback -- the compiler inserts explicit transfers).
  MatrixPtr SlotMatrix(Slot* slot);

  /// Distributed view of a slot: existing RDD or a parallelized host matrix.
  spark::RddPtr SlotRdd(Slot* slot);

  /// Number of partitions for a dataset of `bytes` (HDFS-block-sized splits
  /// capped at a small multiple of the cluster's cores).
  int ChoosePartitions(size_t bytes) const;

  /// Estimated single-execution cost of an instruction: the c(o) metadata.
  double InstructionCost(const compiler::Instruction& inst) const;

  /// Binds a cache entry to a slot on a reuse hit.
  void BindFromEntry(const CacheEntryPtr& entry, Slot* slot);

  /// Binds a slot's result to every output variable of the instruction
  /// (output_var plus extra_output_vars -- CSE'd outputs and aliases share
  /// one hop). `skip` suppresses a self-binding (read hop aliasing itself).
  void BindOutputVars(const compiler::Instruction& inst, const Slot& out,
                      const std::string& skip = std::string());

  /// Stores an executed result in the cache (kind chosen from the data).
  void PutResult(const LineageItemPtr& item, Slot* slot,
                 const compiler::Instruction& inst,
                 const compiler::BasicBlock& block);

  ExecutionContext* ctx_;
};

}  // namespace memphis

#endif  // MEMPHIS_RUNTIME_EXECUTOR_H_
