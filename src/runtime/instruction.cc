#include "runtime/instruction.h"

#include <sstream>

namespace memphis {

size_t Data::SizeBytes() const {
  switch (kind) {
    case Kind::kEmpty:
      return 0;
    case Kind::kScalar:
      return sizeof(double);
    case Kind::kMatrix:
      return matrix != nullptr ? matrix->SizeInBytes() : 0;
    case Kind::kRdd:
      return rdd != nullptr ? rdd->EstimatedBytes() : 0;
    case Kind::kGpu:
      return gpu != nullptr && gpu->buffer != nullptr ? gpu->buffer->bytes : 0;
  }
  return 0;
}

std::string LineageData(const compiler::Instruction& inst) {
  std::ostringstream oss;
  for (size_t i = 0; i < inst.args.size(); ++i) {
    oss << (i > 0 ? "," : "") << inst.args[i];
  }
  if (inst.nonce != 0) oss << "#nd" << inst.nonce;
  return oss.str();
}

}  // namespace memphis
