#include "runtime/recompute.h"

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "compiler/op_registry.h"
#include "lineage/lineage_serde.h"

namespace memphis {

namespace {

std::vector<double> ParseArgs(const std::string& data) {
  std::vector<double> args;
  // Format: "a,b,c" with an optional "#nd<nonce>" suffix.
  const size_t end = data.find('#');
  const std::string body =
      end == std::string::npos ? data : data.substr(0, end);
  size_t start = 0;
  while (start < body.size()) {
    size_t comma = body.find(',', start);
    if (comma == std::string::npos) comma = body.size();
    args.push_back(std::stod(body.substr(start, comma - start)));
    start = comma + 1;
  }
  return args;
}

bool IsPassThrough(const std::string& opcode) {
  return opcode == "collect" || opcode == "parallelize" ||
         opcode == "bcast" || opcode == "h2d" || opcode == "d2h" ||
         opcode == "checkpoint";
}

}  // namespace

MatrixPtr RecomputeTrace(
    const LineageItemPtr& root,
    const std::unordered_map<std::string, MatrixPtr>& extern_inputs) {
  MEMPHIS_CHECK(root != nullptr);
  std::unordered_map<const LineageItem*, MatrixPtr> memo;

  // Bottom-up evaluation over the DAG (post-order via explicit stack).
  std::vector<std::pair<const LineageItem*, size_t>> stack{{root.get(), 0}};
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (memo.count(node) != 0) {
      stack.pop_back();
      continue;
    }
    if (next_child < node->inputs().size()) {
      const LineageItem* child = node->inputs()[next_child].get();
      ++next_child;
      if (memo.count(child) == 0) stack.emplace_back(child, 0);
      continue;
    }
    stack.pop_back();

    const std::string& opcode = node->opcode();
    MatrixPtr value;
    if (opcode == "extern") {
      auto it = extern_inputs.find(node->data());
      if (it == extern_inputs.end()) {
        // Leaves carry binding identities like "X@42"; fall back to the
        // variable name.
        const size_t at = node->data().find('@');
        if (at != std::string::npos) {
          it = extern_inputs.find(node->data().substr(0, at));
        }
      }
      if (it == extern_inputs.end()) {
        throw MemphisError("recompute: unbound external input '" +
                           node->data() + "'");
      }
      value = it->second;
    } else if (opcode == "literal") {
      value = MatrixBlock::Create(1, 1, std::stod(node->data()));
    } else if (IsPassThrough(opcode)) {
      MEMPHIS_CHECK(!node->inputs().empty());
      value = memo.at(node->inputs()[0].get());
    } else if (opcode.rfind("func:", 0) == 0) {
      throw MemphisError(
          "recompute: function-call lineage requires the function body; "
          "serialize the fine-grained trace instead");
    } else {
      const compiler::OpSpec* spec = compiler::FindOp(opcode);
      if (spec == nullptr) {
        throw MemphisError("recompute: unknown opcode '" + opcode + "'");
      }
      std::vector<MatrixPtr> inputs;
      inputs.reserve(node->inputs().size());
      for (const auto& input : node->inputs()) {
        inputs.push_back(memo.at(input.get()));
      }
      value = spec->exec(inputs, ParseArgs(node->data()));
    }
    memo[node] = std::move(value);
  }
  return memo.at(root.get());
}

MatrixPtr Recompute(
    const std::string& log,
    const std::unordered_map<std::string, MatrixPtr>& extern_inputs) {
  return RecomputeTrace(DeserializeLineage(log), extern_inputs);
}

}  // namespace memphis
