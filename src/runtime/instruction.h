#ifndef MEMPHIS_RUNTIME_INSTRUCTION_H_
#define MEMPHIS_RUNTIME_INSTRUCTION_H_

#include <string>

#include "cache/gpu_cache_manager.h"
#include "compiler/linearize.h"
#include "matrix/matrix_block.h"
#include "spark/rdd.h"

namespace memphis {

/// A runtime value bound to a variable or an instruction slot. One logical
/// value may hold several backend representations at once (e.g. a host
/// matrix plus the broadcast handle derived from it, or a collected RDD),
/// which is what enables data-local scheduling (Section 3.3).
struct Data {
  enum class Kind { kEmpty, kScalar, kMatrix, kRdd, kGpu };

  Kind kind = Kind::kEmpty;
  double scalar = 0.0;
  MatrixPtr matrix;                  // Host representation.
  spark::RddPtr rdd;                 // Distributed representation.
  spark::BroadcastPtr broadcast;     // Broadcast handle (if registered).
  GpuCacheObjectPtr gpu;             // Device pointer under cache management.

  /// Virtual time at which an asynchronous producer (prefetch, async
  /// broadcast, async D2H) finishes; consumers max-compose their clock with
  /// this. Negative = immediately available.
  double future_ready = -1.0;

  static Data FromScalar(double value) {
    Data data;
    data.kind = Kind::kScalar;
    data.scalar = value;
    return data;
  }
  static Data FromMatrix(MatrixPtr value) {
    Data data;
    data.kind = Kind::kMatrix;
    data.matrix = std::move(value);
    return data;
  }
  static Data FromRdd(spark::RddPtr value) {
    Data data;
    data.kind = Kind::kRdd;
    data.rdd = std::move(value);
    return data;
  }
  static Data FromGpu(GpuCacheObjectPtr value) {
    Data data;
    data.kind = Kind::kGpu;
    data.gpu = std::move(value);
    return data;
  }

  bool empty() const { return kind == Kind::kEmpty; }

  /// Total bytes of the primary representation (size estimation).
  size_t SizeBytes() const;
};

/// Serializes instruction args into the lineage item's data field; the
/// nonce of nondeterministic instructions makes their lineage unique.
std::string LineageData(const compiler::Instruction& inst);

}  // namespace memphis

#endif  // MEMPHIS_RUNTIME_INSTRUCTION_H_
