#ifndef MEMPHIS_RUNTIME_FAULT_INJECTION_H_
#define MEMPHIS_RUNTIME_FAULT_INJECTION_H_

#include <string>

#include "matrix/matrix_block.h"

namespace memphis {

/// Deterministic wrong-result injection for the metamorphic fuzzer
/// (src/fuzz): while a fault is armed, every CP/GPU execution of `opcode`
/// (after skipping the first `skip_calls` executions) has one output cell
/// multiplied by (1 + relative_error). The reference oracle never goes
/// through the instruction path, so an armed fault is a *silent* wrong
/// result that only output differencing can catch -- exactly the bug class
/// the fuzzer exists for.
///
/// The hook is process-global (like a mutation build would be) and intended
/// for tests and `memphis_fuzz --inject-bug`; production code never arms it.
struct KernelFault {
  std::string opcode;
  double relative_error = 1e-3;
  int skip_calls = 0;
};

/// Arms `fault` (replacing any previous one) / disarms it. Thread-safe.
void ArmKernelFault(const KernelFault& fault);
void DisarmKernelFault();
bool KernelFaultArmed();

/// Applied by the executor to every instruction result: returns `result`
/// untouched when no fault is armed or the opcode does not match, otherwise
/// a perturbed copy. Thread-safe (atomic call counting).
MatrixPtr ApplyKernelFault(const std::string& opcode, MatrixPtr result);

}  // namespace memphis

#endif  // MEMPHIS_RUNTIME_FAULT_INJECTION_H_
