#include "runtime/fault_injection.h"

#include <atomic>
#include <memory>

#include "common/sync.h"

namespace memphis {

namespace {

struct FaultState {
  Mutex mu{LockRank::kFaultInjection, "fault-injection"};
  bool armed MEMPHIS_GUARDED_BY(mu) = false;
  KernelFault fault MEMPHIS_GUARDED_BY(mu);
  std::atomic<int64_t> calls_seen{0};
};

FaultState& State() {
  static FaultState* state = new FaultState();
  return *state;
}

// Fast-path flag so the unarmed case costs one relaxed atomic load.
std::atomic<bool> g_armed{false};

}  // namespace

void ArmKernelFault(const KernelFault& fault) {
  FaultState& state = State();
  MutexLock lock(state.mu);
  state.fault = fault;
  state.calls_seen.store(0);
  state.armed = true;
  g_armed.store(true, std::memory_order_release);
}

void DisarmKernelFault() {
  FaultState& state = State();
  MutexLock lock(state.mu);
  state.armed = false;
  g_armed.store(false, std::memory_order_release);
}

bool KernelFaultArmed() { return g_armed.load(std::memory_order_acquire); }

MatrixPtr ApplyKernelFault(const std::string& opcode, MatrixPtr result) {
  if (!g_armed.load(std::memory_order_acquire)) return result;
  FaultState& state = State();
  MutexLock lock(state.mu);
  if (!state.armed || opcode != state.fault.opcode) return result;
  if (result == nullptr || result->size() == 0) return result;
  if (state.calls_seen.fetch_add(1) < state.fault.skip_calls) return result;
  // Perturb a deterministic cell: the last one, which every shape has.
  auto mutated = std::make_shared<MatrixBlock>(*result);
  double& cell = mutated->At(mutated->rows() - 1, mutated->cols() - 1);
  if (cell == 0.0) {
    cell = state.fault.relative_error;
  } else {
    cell *= 1.0 + state.fault.relative_error;
  }
  return mutated;
}

}  // namespace memphis
