#include "runtime/execution_context.h"

#include <algorithm>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/exporter.h"

namespace memphis {

ExecutionContext::ExecutionContext(const SystemConfig& config,
                                   const sim::CostModel& cost_model)
    : config_(config.mem_scale == 1.0 ? config : config.Scaled()),
      cost_model_(cost_model) {
  // Size the shared execution pool: explicit cp_threads wins, otherwise the
  // per-executor core count capped at what the host actually has. Thread
  // count never changes results (DESIGN.md, "Threading model").
  const int pool_size =
      config_.cp_threads > 0
          ? config_.cp_threads
          : std::min(std::max(1, config_.cores_per_executor),
                     ThreadPool::HardwareThreads());
  ThreadPool::Global().Resize(pool_size);
  spark_ = std::make_unique<spark::SparkContext>(config_, &cost_model_);
  const int devices = std::max(1, config_.num_gpus);
  for (int d = 0; d < devices; ++d) {
    gpus_.push_back(
        std::make_unique<gpu::GpuContext>(config_.gpu_memory, &cost_model_));
    gpu_caches_.push_back(std::make_unique<GpuCacheManager>(
        gpus_.back().get(), config_.gpu_recycling && !config_.gpu_eager_free,
        d));
  }
  cache_ = std::make_unique<LineageCache>(config_, &cost_model_, spark_.get(),
                                          gpu_caches_[0].get());
  for (int d = 1; d < devices; ++d) cache_->AttachGpuCache(gpu_caches_[d].get());
  RegisterMetrics();
}

void ExecutionContext::RegisterMetrics() {
  stats_.RegisterMetrics(&metrics_);
  fusion_stats_.RegisterMetrics(&metrics_);
  cache_->mutable_stats().RegisterMetrics(&metrics_);
  cache_->spark_manager().mutable_stats().RegisterMetrics(&metrics_);
  spark_->mutable_stats().RegisterMetrics(&metrics_);
  for (size_t d = 0; d < gpus_.size(); ++d) {
    const std::string device = std::to_string(d);
    gpus_[d]->mutable_stats().RegisterMetrics(&metrics_,
                                              "gpu" + device + ".");
    gpu_caches_[d]->mutable_stats().RegisterMetrics(
        &metrics_, "gpucache" + device + ".");
    gpu::GpuArena* arena = &gpus_[d]->arena();
    metrics_.RegisterCallback("arena" + device + ".allocated_bytes", [arena] {
      return static_cast<double>(arena->allocated_bytes());
    });
    metrics_.RegisterCallback("arena" + device + ".fragmentation", [arena] {
      return arena->Fragmentation();
    });
  }

  // Sampling gauges over component accounting (no stored counters).
  spark::BlockManager* bm = &spark_->block_manager();
  metrics_.RegisterCallback("bm.storage_used", [bm] {
    return static_cast<double>(bm->storage_used());
  });
  metrics_.RegisterCallback("bm.spilled_partitions", [bm] {
    return static_cast<double>(bm->num_spilled_partitions());
  });
  metrics_.RegisterCallback("bm.dropped_partitions", [bm] {
    return static_cast<double>(bm->num_dropped_partitions());
  });
  HostCache* host = &cache_->host_cache();
  metrics_.RegisterCallback("hostcache.used_bytes", [host] {
    return static_cast<double>(host->used_bytes());
  });
  metrics_.RegisterCallback("hostcache.spills", [host] {
    return static_cast<double>(host->num_spills());
  });
  metrics_.RegisterCallback("hostcache.restores", [host] {
    return static_cast<double>(host->num_restores());
  });
  // Evictions across every tier of the hierarchical cache: spilled host
  // entries, unpersisted RDDs, and device-to-host GPU evictions.
  LineageCache* cache = cache_.get();
  std::vector<GpuCacheManager*> gpu_caches;
  gpu_caches.reserve(gpu_caches_.size());
  for (const auto& manager : gpu_caches_) gpu_caches.push_back(manager.get());
  metrics_.RegisterCallback("cache.evictions", [cache, gpu_caches] {
    double total =
        static_cast<double>(cache->host_cache().num_spills()) +
        static_cast<double>(cache->spark_manager().stats().rdds_evicted);
    for (GpuCacheManager* manager : gpu_caches) {
      total += static_cast<double>(manager->stats().d2h_evictions.value());
    }
    return total;
  });
}

int ExecutionContext::LeastLoadedGpu() const {
  int best = 0;
  for (size_t d = 1; d < gpus_.size(); ++d) {
    if (gpus_[d]->stream().available_at() <
        gpus_[best]->stream().available_at()) {
      best = static_cast<int>(d);
    }
  }
  return best;
}

ExecutionContext::~ExecutionContext() {
  // Fold this session's totals into the process-wide registry (owned
  // metrics only there, so nothing dangles once the components die).
  FlushMetricsToGlobal();
}

bool ExecutionContext::FlushMetricsToGlobal() {
  // A context destroyed after an explicit flush (the serve shutdown path
  // flushes, then destroys) must not double-count: FlushInto *adds* counter
  // totals into the global registry, so running it twice would double every
  // session counter. The exchange makes exactly one caller the flusher.
  if (metrics_flushed_.exchange(true, std::memory_order_acq_rel)) {
    obs::MetricsRegistry::Global().GetCounter("obs.duplicate_flushes")->Add(1);
    return false;
  }
  metrics_.FlushInto(&obs::MetricsRegistry::Global());
  // Sessions destroyed after the snapshot exporter stopped (e.g. the last
  // ticket holder of a shut-down SessionManager) would otherwise never make
  // it into the exported file: re-export once per late flush.
  obs::SnapshotExporter::Global().OnLateFlush();
  return true;
}

void ExecutionContext::ResetForReuse() {
  // RemoveVar (not clear()) so GPU references are released through the
  // owning managers and the lineage map stays consistent.
  std::vector<std::string> names;
  names.reserve(vars_.size());
  for (const auto& [name, data] : vars_) names.push_back(name);
  for (const std::string& name : names) RemoveVar(name);
  lineage_map_.Clear();
}

void ExecutionContext::SetVar(const std::string& name, Data value) {
  // Invariant: every variable binding owns one reference to its GPU
  // pointer (instruction slots own their references separately), so
  // aliased bindings ("w" and "w_best" holding the same pointer) release
  // independently without double-freeing.
  auto it = vars_.find(name);
  if (value.gpu != nullptr && (it == vars_.end() || it->second.gpu != value.gpu)) {
    value.gpu->owner->AddRef(value.gpu);
  }
  if (it != vars_.end() && it->second.gpu != nullptr &&
      it->second.gpu != value.gpu) {
    it->second.gpu->owner->Release(it->second.gpu, &now_);
  }
  vars_[name] = std::move(value);
}

const Data& ExecutionContext::GetVar(const std::string& name) const {
  auto it = vars_.find(name);
  MEMPHIS_CHECK_MSG(it != vars_.end(), "unbound variable: " + name);
  return it->second;
}

bool ExecutionContext::HasVar(const std::string& name) const {
  return vars_.count(name) != 0;
}

void ExecutionContext::RemoveVar(const std::string& name) {
  auto it = vars_.find(name);
  if (it == vars_.end()) return;
  if (it->second.gpu != nullptr) {
    it->second.gpu->owner->Release(it->second.gpu, &now_);
  }
  vars_.erase(it);
  lineage_map_.Remove(name);
}

void ExecutionContext::BindMatrix(const std::string& name, MatrixPtr value) {
  SetVar(name, Data::FromMatrix(std::move(value)));
  // Each binding gets a fresh identity: rebinding a name with new contents
  // must not alias the old lineage. Callers with stable identities (words,
  // mini-batches, weights) use BindMatrixWithId instead.
  lineage_map_.Set(name, LineageItem::Leaf(
                             "extern", name + "@" +
                                           std::to_string(++bind_counter_)));
}

void ExecutionContext::BindScalar(const std::string& name, double value) {
  SetVar(name, Data::FromScalar(value));
  lineage_map_.Set(name,
                   LineageItem::Leaf("literal", std::to_string(value)));
}

void ExecutionContext::BindMatrixWithId(const std::string& name,
                                        MatrixPtr value,
                                        const std::string& id) {
  SetVar(name, Data::FromMatrix(std::move(value)));
  lineage_map_.Set(name, LineageItem::Leaf("extern", id));
}

void ExecutionContext::BindRdd(const std::string& name, spark::RddPtr rdd,
                               const std::string& id) {
  SetVar(name, Data::FromRdd(std::move(rdd)));
  lineage_map_.Set(name, LineageItem::Leaf("extern", id));
}

void ExecutionContext::UploadToGpu(const std::string& name) {
  Data data = GetVar(name);
  MEMPHIS_CHECK_MSG(data.matrix != nullptr, "UploadToGpu: no host matrix");
  if (data.gpu != nullptr) return;  // Already resident.
  const int device = LeastLoadedGpu();
  GpuCacheObjectPtr object =
      gpu_caches_[device]->Allocate(data.matrix->SizeInBytes(), &now_);
  gpus_[device]->CopyH2D(object->buffer, data.matrix, &now_);
  data.gpu = object;
  SetVar(name, std::move(data));                    // Var takes its own ref.
  gpu_caches_[device]->Release(object, &now_);      // Drop the alloc ref.
}

MatrixPtr ExecutionContext::FetchMatrix(const std::string& name) {
  Data data = GetVar(name);
  if (data.future_ready >= 0.0) {
    AdvanceTo(data.future_ready);
    ++stats_.futures_waited;
  }
  if (data.matrix != nullptr) return data.matrix;
  if (data.kind == Data::Kind::kScalar) {
    return MatrixBlock::Create(1, 1, data.scalar);
  }
  if (data.kind == Data::Kind::kGpu) {
    MatrixPtr value =
        gpus_[data.gpu->device]->CopyD2H(data.gpu->buffer, &now_);
    data.matrix = value;
    vars_[name] = data;
    return value;
  }
  if (data.kind == Data::Kind::kRdd) {
    auto result = spark_->Collect(data.rdd, now_);
    AdvanceTo(result.completed_at);
    data.matrix = result.value;
    vars_[name] = data;
    return result.value;
  }
  throw MemphisError("FetchMatrix: variable '" + name + "' holds no value");
}

double ExecutionContext::FetchScalar(const std::string& name) {
  const Data& data = GetVar(name);
  if (data.kind == Data::Kind::kScalar) return data.scalar;
  return FetchMatrix(name)->AsScalar();
}

bool ExecutionContext::tracing_enabled() const {
  return config_.reuse_mode != ReuseMode::kNone;
}

bool ExecutionContext::probing_enabled() const {
  switch (config_.reuse_mode) {
    case ReuseMode::kNone:
    case ReuseMode::kTraceOnly:
      return false;
    default:
      return true;
  }
}

bool ExecutionContext::put_enabled() const {
  switch (config_.reuse_mode) {
    case ReuseMode::kNone:
    case ReuseMode::kTraceOnly:
    case ReuseMode::kProbeOnly:
      return false;
    default:
      return true;
  }
}

bool ExecutionContext::instruction_reuse_enabled(Backend backend) const {
  switch (config_.reuse_mode) {
    case ReuseMode::kNone:
    case ReuseMode::kTraceOnly:
      return false;
    case ReuseMode::kProbeOnly:
      return true;  // Probes happen; puts are disabled.
    case ReuseMode::kLima:
      return backend == Backend::kCP;  // Local-only, fine-grained.
    case ReuseMode::kHelix:
      return false;  // Coarse-grained (function-level) only.
    case ReuseMode::kMemphis:
      return true;
  }
  return false;
}

}  // namespace memphis
