#ifndef MEMPHIS_RUNTIME_EXECUTION_CONTEXT_H_
#define MEMPHIS_RUNTIME_EXECUTION_CONTEXT_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/lineage_cache.h"
#include "common/config.h"
#include "gpu/gpu_context.h"
#include "lineage/lineage_map.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "runtime/instruction.h"
#include "runtime/stats.h"
#include "sim/cost_model.h"
#include "sim/timeline.h"
#include "spark/spark_context.h"

namespace memphis {

/// Owns everything one "session" needs: the virtual clock, the variable map,
/// the lineage map, and all backend contexts plus the hierarchical lineage
/// cache. Constructed from a (scaled) SystemConfig.
class ExecutionContext {
 public:
  explicit ExecutionContext(const SystemConfig& config,
                            const sim::CostModel& cost_model = {});
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Prepares the context for the next request on the same session (serve
  /// layer): unbinds every variable (releasing GPU references) and clears
  /// the lineage map, but keeps the backends, the lineage cache, and the
  /// virtual clock (timelines are monotonic -- callers measure per-request
  /// simulated time as a delta of now()).
  void ResetForReuse();

  /// Folds this session's metrics into obs::MetricsRegistry::Global().
  /// Idempotent: exactly one call transfers the totals; later calls (e.g.
  /// the destructor after an explicit flush) only bump the global
  /// "obs.duplicate_flushes" counter and return false. A flush landing
  /// after the snapshot exporter stopped (e.g. a session destroyed by the
  /// last ticket holder after SessionManager shutdown) is routed to
  /// obs::SnapshotExporter::OnLateFlush so the exported file still carries
  /// the tenant-labeled entries, counted under "obs.late_flushes".
  bool FlushMetricsToGlobal();

  /// The request this context is currently serving (rid 0 between
  /// requests). Set by the serve layer before each run so the executor's
  /// dispatch spans carry the id even off the submitting thread.
  const obs::RequestContext& request() const { return request_; }
  void set_request(const obs::RequestContext& request) { request_ = request; }

  // --- variable map ---------------------------------------------------------
  /// Binds a variable, releasing any GPU pointer the old value held.
  void SetVar(const std::string& name, Data value);
  const Data& GetVar(const std::string& name) const;
  bool HasVar(const std::string& name) const;
  void RemoveVar(const std::string& name);

  /// Convenience: host matrix / scalar binding with external-input lineage.
  void BindMatrix(const std::string& name, MatrixPtr value);
  void BindScalar(const std::string& name, double value);

  /// Binds a matrix whose lineage leaf carries an explicit identity (e.g.
  /// "word:1542" or a pixel-encoded image id): equal ids make repeated
  /// inputs reusable (Section 6.2's id-identified duplicate mini-batches).
  void BindMatrixWithId(const std::string& name, MatrixPtr value,
                        const std::string& id);

  /// Binds a distributed variable (with an identity leaf).
  void BindRdd(const std::string& name, spark::RddPtr rdd,
               const std::string& id);

  /// Pre-transfers a bound matrix variable to the device and keeps the
  /// pointer resident (the paper's PyTorch methodology: "transfer the model
  /// parameters ... to the GPU before starting the mini-batch processing").
  void UploadToGpu(const std::string& name);

  /// Fetches a variable's value as a host matrix, waiting on futures and
  /// transferring from remote backends if needed (charges the clock).
  MatrixPtr FetchMatrix(const std::string& name);
  double FetchScalar(const std::string& name);

  // --- clocks ------------------------------------------------------------------
  double now() const { return now_; }
  double* mutable_now() { return &now_; }
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }
  void Charge(double seconds) { now_ += seconds; }

  // --- components ----------------------------------------------------------------
  const SystemConfig& config() const { return config_; }
  const sim::CostModel& cost_model() const { return cost_model_; }
  spark::SparkContext& spark() { return *spark_; }

  // --- GPU devices (Section 5.4: separate caches per device) ---------------
  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  gpu::GpuContext& gpu(int device = 0) { return *gpus_[device]; }
  GpuCacheManager& gpu_cache(int device = 0) { return *gpu_caches_[device]; }
  /// The manager owning a device object (dispatch for releases).
  GpuCacheManager& gpu_cache_for(const GpuCacheObjectPtr& object) {
    return *object->owner;
  }
  /// Device with the earliest-available stream (least-loaded placement).
  int LeastLoadedGpu() const;
  LineageCache& cache() { return *cache_; }
  LineageMap& lineage() { return lineage_map_; }
  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }
  FusionStats& fusion_stats() { return fusion_stats_; }
  const FusionStats& fusion_stats() const { return fusion_stats_; }
  sim::Timeline& async_pool() { return async_pool_; }

  /// This session's unified metrics view: every component's counters are
  /// registered here under dotted names (exec.*, cache.*, spark.*, gpu<d>.*,
  /// bm.*, ...). The destructor flushes the totals into
  /// obs::MetricsRegistry::Global() so process-level exports aggregate every
  /// system the process created.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Reuse/tracing switches derived from the configured mode.
  bool tracing_enabled() const;
  bool probing_enabled() const;
  bool put_enabled() const;
  bool instruction_reuse_enabled(Backend backend) const;

  const std::unordered_map<std::string, Data>& vars() const { return vars_; }

 private:
  /// Names every component's stats in metrics_ (called once from the ctor,
  /// after all components exist).
  void RegisterMetrics();

  SystemConfig config_;
  sim::CostModel cost_model_;
  double now_ = 0.0;
  std::unique_ptr<spark::SparkContext> spark_;
  std::vector<std::unique_ptr<gpu::GpuContext>> gpus_;
  std::vector<std::unique_ptr<GpuCacheManager>> gpu_caches_;
  std::unique_ptr<LineageCache> cache_;
  LineageMap lineage_map_;
  std::unordered_map<std::string, Data> vars_;
  ExecStats stats_;
  FusionStats fusion_stats_;
  sim::Timeline async_pool_{"driver-async"};
  uint64_t bind_counter_ = 0;
  obs::RequestContext request_;
  std::atomic<bool> metrics_flushed_{false};
  /// Declared last so it is destroyed first: entries point into the
  /// components above, which must still be alive while the destructor
  /// flushes the totals to the global registry.
  obs::MetricsRegistry metrics_;
};

}  // namespace memphis

#endif  // MEMPHIS_RUNTIME_EXECUTION_CONTEXT_H_
