#ifndef MEMPHIS_RUNTIME_RECOMPUTE_H_
#define MEMPHIS_RUNTIME_RECOMPUTE_H_

#include <string>
#include <unordered_map>

#include "lineage/lineage_item.h"
#include "matrix/matrix_block.h"

namespace memphis {

/// RECOMPUTE(log): deserializes a lineage log and re-executes the full
/// operator chain to reproduce the exact intermediate (Section 3.2:
/// recomputation for debugging). The execution environment may differ from
/// the one that produced the trace -- all operators run through the local
/// reference kernels regardless of their original backend placement.
///
/// `extern_inputs` binds the trace's external leaves (by variable name).
/// Throws MemphisError for unknown opcodes or unbound externals.
MatrixPtr Recompute(const std::string& log,
                    const std::unordered_map<std::string, MatrixPtr>&
                        extern_inputs);

/// In-memory variant operating on an already-deserialized trace.
MatrixPtr RecomputeTrace(const LineageItemPtr& root,
                         const std::unordered_map<std::string, MatrixPtr>&
                             extern_inputs);

}  // namespace memphis

#endif  // MEMPHIS_RUNTIME_RECOMPUTE_H_
