#ifndef MEMPHIS_LINEAGE_LINEAGE_QUERY_H_
#define MEMPHIS_LINEAGE_LINEAGE_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "lineage/lineage_item.h"

namespace memphis {

/// Query processing over lineage traces (the paper's future-work direction
/// for model management and debugging, Sections 3.2 and 8): inspect,
/// summarize, and diff the provenance of intermediates.

/// All nodes whose opcode equals `opcode`, in topological order.
std::vector<LineageItemPtr> FindByOpcode(const LineageItemPtr& root,
                                         const std::string& opcode);

/// Histogram of opcodes over the DAG (distinct nodes).
std::map<std::string, size_t> OpcodeHistogram(const LineageItemPtr& root);

/// Names of all external inputs (extern leaves) the trace depends on,
/// deduplicated, in first-encounter order.
std::vector<std::string> ExternalInputs(const LineageItemPtr& root);

/// Result of structurally diffing two traces.
struct LineageDiff {
  bool equal = false;
  /// The shallowest node pair where the traces diverge (nullptr when equal).
  /// For unequal DAGs of different shape this is the closest mismatching
  /// ancestor pair on a common path from the roots.
  LineageItemPtr left;
  LineageItemPtr right;
  std::string reason;  // "opcode", "data", "arity", or "" when equal.
};

/// Finds the first structural divergence between two traces: the debugging
/// primitive behind "why do these two models differ?".
LineageDiff DiffLineage(const LineageItemPtr& a, const LineageItemPtr& b);

/// Human-readable multi-line rendering of a trace (indented tree view with
/// shared sub-DAGs printed once and referenced by id).
std::string FormatLineage(const LineageItemPtr& root, size_t max_nodes = 200);

}  // namespace memphis

#endif  // MEMPHIS_LINEAGE_LINEAGE_QUERY_H_
