#include "lineage/lineage_item.h"

#include <atomic>
#include <deque>
#include <unordered_set>

#include "common/hash.h"

namespace memphis {

namespace {
std::atomic<uint64_t> g_next_id{1};
std::atomic<uint64_t> g_num_created{0};
}  // namespace

LineageItem::LineageItem(std::string opcode, std::string data,
                         std::vector<LineageItemPtr> inputs)
    : opcode_(std::move(opcode)),
      data_(std::move(data)),
      inputs_(std::move(inputs)),
      id_(g_next_id.fetch_add(1, std::memory_order_relaxed)) {
  uint64_t hash = Fnv1a(opcode_);
  hash = HashCombine(hash, Fnv1a(data_));
  int height = 0;
  for (const auto& input : inputs_) {
    hash = HashCombine(hash, input->hash());
    height = std::max(height, input->height() + 1);
  }
  hash_ = hash;
  height_ = height;
  g_num_created.fetch_add(1, std::memory_order_relaxed);
}

LineageItemPtr LineageItem::Create(std::string opcode, std::string data,
                                   std::vector<LineageItemPtr> inputs) {
  return std::shared_ptr<const LineageItem>(new LineageItem(
      std::move(opcode), std::move(data), std::move(inputs)));
}

LineageItemPtr LineageItem::Leaf(std::string opcode, std::string data) {
  return Create(std::move(opcode), std::move(data), {});
}

uint64_t LineageItem::num_created() {
  return g_num_created.load(std::memory_order_relaxed);
}

bool LineageEquals(const LineageItem& a, const LineageItem& b) {
  // Early aborts before any traversal.
  if (&a == &b) return true;
  if (a.hash() != b.hash() || a.height() != b.height()) return false;

  // Non-recursive pairwise walk with memoization of proven-equal pairs
  // (object-identity keyed); proven pairs are skipped on re-visit, which is
  // what makes probing compacted DAGs with many shared sub-DAGs cheap.
  struct PairHash {
    size_t operator()(const std::pair<const LineageItem*,
                                      const LineageItem*>& p) const {
      return HashCombine(reinterpret_cast<uintptr_t>(p.first),
                         reinterpret_cast<uintptr_t>(p.second));
    }
  };
  std::unordered_set<std::pair<const LineageItem*, const LineageItem*>,
                     PairHash>
      proven;
  std::deque<std::pair<const LineageItem*, const LineageItem*>> queue;
  queue.emplace_back(&a, &b);
  while (!queue.empty()) {
    auto [x, y] = queue.front();
    queue.pop_front();
    if (x == y) continue;  // Shared sub-DAG: object identity.
    if (x->hash() != y->hash() || x->height() != y->height()) return false;
    if (x->opcode() != y->opcode() || x->data() != y->data()) return false;
    if (x->inputs().size() != y->inputs().size()) return false;
    if (!proven.insert({x, y}).second) continue;  // Already being verified.
    for (size_t i = 0; i < x->inputs().size(); ++i) {
      queue.emplace_back(x->inputs()[i].get(), y->inputs()[i].get());
    }
  }
  return true;
}

bool LineageEquals(const LineageItemPtr& a, const LineageItemPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return LineageEquals(*a, *b);
}

size_t LineageDagSize(const LineageItemPtr& root) {
  if (root == nullptr) return 0;
  std::unordered_set<const LineageItem*> seen;
  std::deque<const LineageItem*> queue{root.get()};
  while (!queue.empty()) {
    const LineageItem* node = queue.front();
    queue.pop_front();
    if (!seen.insert(node).second) continue;
    for (const auto& input : node->inputs()) queue.push_back(input.get());
  }
  return seen.size();
}

}  // namespace memphis
