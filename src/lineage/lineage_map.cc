#include "lineage/lineage_map.h"

namespace memphis {

LineageItemPtr LineageMap::Trace(const std::string& output_var,
                                 const std::string& opcode,
                                 const std::string& data,
                                 const std::vector<std::string>& input_vars) {
  std::vector<LineageItemPtr> inputs;
  inputs.reserve(input_vars.size());
  for (const std::string& var : input_vars) {
    auto it = map_.find(var);
    if (it != map_.end()) {
      inputs.push_back(it->second);
    } else {
      // External input (persistent read / literal passed by name): a leaf
      // identified by its variable name keeps the trace self-contained.
      inputs.push_back(LineageItem::Leaf("extern", var));
    }
  }
  auto item = LineageItem::Create(opcode, data, std::move(inputs));
  map_[output_var] = item;
  return item;
}

LineageItemPtr LineageMap::Get(const std::string& var) const {
  auto it = map_.find(var);
  return it == map_.end() ? nullptr : it->second;
}

void LineageMap::Set(const std::string& var, LineageItemPtr item) {
  map_[var] = std::move(item);
}

void LineageMap::Remove(const std::string& var) { map_.erase(var); }

}  // namespace memphis
