#ifndef MEMPHIS_LINEAGE_LINEAGE_MAP_H_
#define MEMPHIS_LINEAGE_LINEAGE_MAP_H_

#include <string>
#include <unordered_map>

#include "lineage/lineage_item.h"

namespace memphis {

/// Maps live variable names to the lineage DAGs of their current values
/// (Section 3.2). Maintained incrementally by TRACE; entries are replaced by
/// cache keys on successful probes (compaction, Figure 5), which increases
/// object-identity sharing across DAGs.
class LineageMap {
 public:
  /// Traces one instruction: builds the output's lineage item from the
  /// lineage of `input_vars` plus literal `data`, and binds it to
  /// `output_var`. Unknown input variables are treated as external leaves.
  LineageItemPtr Trace(const std::string& output_var,
                       const std::string& opcode, const std::string& data,
                       const std::vector<std::string>& input_vars);

  /// Lineage of a live variable; nullptr if not traced.
  LineageItemPtr Get(const std::string& var) const;

  /// Binds a variable to an existing lineage item (copy-on-assign semantics
  /// for `x = y`, and compaction after a cache hit).
  void Set(const std::string& var, LineageItemPtr item);

  /// Removes a variable (rmvar).
  void Remove(const std::string& var);

  void Clear() { map_.clear(); }
  size_t size() const { return map_.size(); }

  const std::unordered_map<std::string, LineageItemPtr>& entries() const {
    return map_;
  }

 private:
  std::unordered_map<std::string, LineageItemPtr> map_;
};

}  // namespace memphis

#endif  // MEMPHIS_LINEAGE_LINEAGE_MAP_H_
