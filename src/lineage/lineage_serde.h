#ifndef MEMPHIS_LINEAGE_LINEAGE_SERDE_H_
#define MEMPHIS_LINEAGE_LINEAGE_SERDE_H_

#include <string>

#include "lineage/lineage_item.h"

namespace memphis {

/// SERIALIZE(trace): writes the lineage DAG as a lineage log -- one line per
/// node in topological (inputs-first) order:
///   `(<id>) <opcode> [<data>] (<input-id> <input-id> ...)`
/// Shared sub-DAGs are written once and referenced by id, so the log size is
/// proportional to the DAG (not the tree) size.
std::string SerializeLineage(const LineageItemPtr& root);

/// DESERIALIZE(log): parses a lineage log back into an in-memory DAG,
/// preserving sharing. Throws MemphisError on malformed input.
LineageItemPtr DeserializeLineage(const std::string& log);

}  // namespace memphis

#endif  // MEMPHIS_LINEAGE_LINEAGE_SERDE_H_
