#include "lineage/lineage_serde.h"

#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace memphis {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case '\\':
          out += '\\';
          break;
        case 't':
          out += '\t';
          break;
        case 'n':
          out += '\n';
          break;
        default:
          throw MemphisError("lineage log: bad escape sequence");
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Topological order, inputs before consumers, each node once.
std::vector<const LineageItem*> TopoOrder(const LineageItemPtr& root) {
  std::vector<const LineageItem*> order;
  std::unordered_set<const LineageItem*> visited;
  // Iterative post-order DFS.
  std::vector<std::pair<const LineageItem*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (visited.count(node) != 0) {
      stack.pop_back();
      continue;
    }
    if (next_child < node->inputs().size()) {
      const LineageItem* child = node->inputs()[next_child].get();
      ++next_child;
      if (visited.count(child) == 0) stack.emplace_back(child, 0);
    } else {
      visited.insert(node);
      order.push_back(node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

std::string SerializeLineage(const LineageItemPtr& root) {
  MEMPHIS_CHECK(root != nullptr);
  std::ostringstream oss;
  std::unordered_map<const LineageItem*, uint64_t> local_ids;
  uint64_t next_id = 0;
  for (const LineageItem* node : TopoOrder(root)) {
    const uint64_t id = next_id++;
    local_ids[node] = id;
    oss << id << '\t' << Escape(node->opcode()) << '\t'
        << Escape(node->data()) << '\t';
    for (size_t i = 0; i < node->inputs().size(); ++i) {
      if (i > 0) oss << ',';
      oss << local_ids.at(node->inputs()[i].get());
    }
    oss << '\n';
  }
  return oss.str();
}

LineageItemPtr DeserializeLineage(const std::string& log) {
  std::unordered_map<uint64_t, LineageItemPtr> nodes;
  LineageItemPtr last;
  std::istringstream iss(log);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.empty()) continue;
    // Split into exactly 4 tab-separated fields.
    std::vector<std::string> fields;
    size_t start = 0;
    for (int f = 0; f < 3; ++f) {
      const size_t tab = line.find('\t', start);
      if (tab == std::string::npos)
        throw MemphisError("lineage log: malformed line: " + line);
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    fields.push_back(line.substr(start));

    const uint64_t id = std::stoull(fields[0]);
    std::vector<LineageItemPtr> inputs;
    if (!fields[3].empty()) {
      std::istringstream ins(fields[3]);
      std::string token;
      while (std::getline(ins, token, ',')) {
        auto it = nodes.find(std::stoull(token));
        if (it == nodes.end())
          throw MemphisError("lineage log: forward reference to id " + token);
        inputs.push_back(it->second);
      }
    }
    last = LineageItem::Create(Unescape(fields[1]), Unescape(fields[2]),
                               std::move(inputs));
    nodes[id] = last;
  }
  if (last == nullptr) throw MemphisError("lineage log: empty");
  return last;
}

}  // namespace memphis
