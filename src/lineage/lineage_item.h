#ifndef MEMPHIS_LINEAGE_LINEAGE_ITEM_H_
#define MEMPHIS_LINEAGE_LINEAGE_ITEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace memphis {

class LineageItem;
using LineageItemPtr = std::shared_ptr<const LineageItem>;

/// One node of a lineage trace DAG (Section 3.2): an opcode, the literal
/// data items baked into the instruction (scalar constants, dimensions,
/// seeds), and pointers to the lineage of the inputs.
///
/// Items are immutable. `hash` and `height` are computed at construction
/// from the (already immutable) inputs, making probes O(1) in the common
/// case and enabling the early-abort conditions of the equality check.
class LineageItem {
 public:
  /// Creates an interior node. Inputs must outlive nothing -- shared_ptr.
  static LineageItemPtr Create(std::string opcode, std::string data,
                               std::vector<LineageItemPtr> inputs);

  /// Creates a leaf (e.g. an input dataset handle or a literal).
  static LineageItemPtr Leaf(std::string opcode, std::string data);

  const std::string& opcode() const { return opcode_; }
  const std::string& data() const { return data_; }
  const std::vector<LineageItemPtr>& inputs() const { return inputs_; }

  /// Memoized hash over (opcode, data, input hashes) -- Section 3.2.
  uint64_t hash() const { return hash_; }

  /// Longest path to a leaf; used both as an equality early-abort and as
  /// the h(o) term of the GPU eviction score (Eq. 2).
  int height() const { return height_; }

  /// Process-unique id (creation order); used for serialization.
  uint64_t id() const { return id_; }

  /// Number of LineageItem objects ever created (tracing overhead metric).
  static uint64_t num_created();

 private:
  LineageItem(std::string opcode, std::string data,
              std::vector<LineageItemPtr> inputs);

  std::string opcode_;
  std::string data_;
  std::vector<LineageItemPtr> inputs_;
  uint64_t hash_ = 0;
  int height_ = 0;
  uint64_t id_ = 0;
};

/// Structural (deep) equality of two lineage DAGs. Non-recursive,
/// queue-based, with sub-DAG memoization and early aborts on hash mismatch,
/// height difference, and shared sub-DAGs (object identity) -- Section 3.2.
bool LineageEquals(const LineageItem& a, const LineageItem& b);
bool LineageEquals(const LineageItemPtr& a, const LineageItemPtr& b);

/// Hash/equality functors for lineage-keyed hash maps (the lineage cache).
struct LineageItemPtrHash {
  size_t operator()(const LineageItemPtr& item) const {
    return static_cast<size_t>(item->hash());
  }
};
struct LineageItemPtrEq {
  bool operator()(const LineageItemPtr& a, const LineageItemPtr& b) const {
    return LineageEquals(a, b);
  }
};

/// Number of nodes reachable from `root` (distinct objects).
size_t LineageDagSize(const LineageItemPtr& root);

}  // namespace memphis

#endif  // MEMPHIS_LINEAGE_LINEAGE_ITEM_H_
