#include "lineage/lineage_query.h"

#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"

namespace memphis {

namespace {

/// Topological order (inputs first), distinct nodes only.
std::vector<LineageItemPtr> Topo(const LineageItemPtr& root) {
  std::vector<LineageItemPtr> order;
  if (root == nullptr) return order;
  std::unordered_set<const LineageItem*> visited;
  std::vector<std::pair<LineageItemPtr, size_t>> stack{{root, 0}};
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (visited.count(node.get()) != 0) {
      stack.pop_back();
      continue;
    }
    if (next_child < node->inputs().size()) {
      LineageItemPtr child = node->inputs()[next_child];
      ++next_child;
      if (visited.count(child.get()) == 0) stack.emplace_back(child, 0);
    } else {
      visited.insert(node.get());
      order.push_back(node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

std::vector<LineageItemPtr> FindByOpcode(const LineageItemPtr& root,
                                         const std::string& opcode) {
  std::vector<LineageItemPtr> matches;
  for (const auto& node : Topo(root)) {
    if (node->opcode() == opcode) matches.push_back(node);
  }
  return matches;
}

std::map<std::string, size_t> OpcodeHistogram(const LineageItemPtr& root) {
  std::map<std::string, size_t> histogram;
  for (const auto& node : Topo(root)) ++histogram[node->opcode()];
  return histogram;
}

std::vector<std::string> ExternalInputs(const LineageItemPtr& root) {
  std::vector<std::string> names;
  std::unordered_set<std::string> seen;
  for (const auto& node : Topo(root)) {
    if (node->opcode() == "extern" && seen.insert(node->data()).second) {
      names.push_back(node->data());
    }
  }
  return names;
}

LineageDiff DiffLineage(const LineageItemPtr& a, const LineageItemPtr& b) {
  LineageDiff diff;
  if (LineageEquals(a, b)) {
    diff.equal = true;
    return diff;
  }
  // BFS over aligned pairs: the first local mismatch is the shallowest
  // divergence. Pairs already proven equal (by hash+equality) are pruned.
  struct PairHash {
    size_t operator()(const std::pair<const LineageItem*,
                                      const LineageItem*>& p) const {
      return reinterpret_cast<uintptr_t>(p.first) * 31 ^
             reinterpret_cast<uintptr_t>(p.second);
    }
  };
  std::unordered_set<std::pair<const LineageItem*, const LineageItem*>,
                     PairHash>
      visited;
  std::deque<std::pair<LineageItemPtr, LineageItemPtr>> queue{{a, b}};
  while (!queue.empty()) {
    auto [x, y] = queue.front();
    queue.pop_front();
    if (x == nullptr || y == nullptr) continue;
    if (!visited.insert({x.get(), y.get()}).second) continue;
    if (LineageEquals(x, y)) continue;  // Subtrees agree: prune.
    if (x->opcode() != y->opcode()) {
      diff.left = x;
      diff.right = y;
      diff.reason = "opcode";
      return diff;
    }
    if (x->data() != y->data()) {
      diff.left = x;
      diff.right = y;
      diff.reason = "data";
      return diff;
    }
    if (x->inputs().size() != y->inputs().size()) {
      diff.left = x;
      diff.right = y;
      diff.reason = "arity";
      return diff;
    }
    for (size_t i = 0; i < x->inputs().size(); ++i) {
      queue.emplace_back(x->inputs()[i], y->inputs()[i]);
    }
  }
  // Unequal overall but every local pair matched (can only happen through
  // exotic sharing differences): report the roots.
  diff.left = a;
  diff.right = b;
  diff.reason = "structure";
  return diff;
}

std::string FormatLineage(const LineageItemPtr& root, size_t max_nodes) {
  MEMPHIS_CHECK(root != nullptr);
  std::ostringstream oss;
  std::unordered_map<const LineageItem*, size_t> printed;
  size_t next_id = 0;
  size_t emitted = 0;

  // Recursive tree print with back-references for shared sub-DAGs.
  std::vector<std::pair<LineageItemPtr, int>> stack{{root, 0}};
  while (!stack.empty() && emitted < max_nodes) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) oss << "  ";
    auto it = printed.find(node.get());
    if (it != printed.end()) {
      oss << "^" << it->second << " (" << node->opcode() << ")\n";
      continue;
    }
    const size_t id = next_id++;
    printed[node.get()] = id;
    oss << "#" << id << " " << node->opcode();
    if (!node->data().empty()) oss << " [" << node->data() << "]";
    oss << "\n";
    ++emitted;
    for (auto input = node->inputs().rbegin(); input != node->inputs().rend();
         ++input) {
      stack.emplace_back(*input, depth + 1);
    }
  }
  if (emitted >= max_nodes) oss << "... (truncated)\n";
  return oss.str();
}

}  // namespace memphis
