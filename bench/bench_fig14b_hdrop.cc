// Figure 14(b): HDROP -- dropout-rate tuning of an autoencoder.
//
// Paper setup: grid search over dropout rates 5%-50% of a 500-2 autoencoder
// on KDD98, 10 epochs each, with a batch-wise input data pipeline (IDP:
// normalization + binning/recoding/one-hot). Paper result: MPH 1.7x over
// Base-G by reusing the IDP across epochs (transform on the host,
// normalization on the GPU); CoorDL reuses the CPU part only (24% slower
// than MPH).

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunHdrop;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig14b_hdrop");
  const std::vector<double> rates = {0.05, 0.15, 0.25, 0.35, 0.5};
  const int epochs = 5;

  std::vector<Row> rows;
  Row row{"KDD98, 5 rates x 5 epochs", {}};
  for (Baseline b : {Baseline::kBase, Baseline::kCoorDl, Baseline::kLima,
                     Baseline::kMemphis}) {
    row.seconds.push_back(RunHdrop(b, epochs, rates).seconds);
  }
  rows.push_back(row);
  PrintTable("Figure 14(b): HDROP autoencoder dropout-rate tuning",
             {"Base-G", "CoorDL", "LIMA", "MPH"}, rows);
  std::printf(
      "paper shape: MPH 1.7x over Base-G via batch-wise IDP reuse across\n"
      "epochs; CoorDL (CPU-side IDP reuse only) ~24%% slower than MPH.\n");
  return bench::Finish();
}
