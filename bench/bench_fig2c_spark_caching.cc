// Figure 2(c): RDD caching strategies under lazy evaluation.
//
// Paper result: eager materialization of every transformation (the
// traditional eager-caching approach of LIMA/tf.data/Cachew) is ~10x slower
// than no caching at all, while MEMPHIS's lazy, workload-aware caching is
// ~2x faster than no caching by reusing RDDs and collected actions.
// Chain/RDD counts are nominal (paper: 12K RDDs, 4K reusable); the working
// set is dimension-scaled (DESIGN.md).

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunSparkCachingMicro;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig2c_spark_caching");
  const int chains = 36;
  const int chain_length = 8;
  const double reuse_frac = 0.33;

  std::vector<Row> rows;
  Row row{"12K RDDs, 4K reusable", {}};
  // No caching at all (plain lazy evaluation).
  row.seconds.push_back(
      RunSparkCachingMicro(Baseline::kBase, false, chains, chain_length,
                           reuse_frac)
          .seconds);
  // Eager caching: persist + materialize after every transformation.
  row.seconds.push_back(
      RunSparkCachingMicro(Baseline::kBase, true, chains, chain_length,
                           reuse_frac)
          .seconds);
  // MEMPHIS: lazy delayed caching, action/RDD reuse, lazy GC.
  row.seconds.push_back(
      RunSparkCachingMicro(Baseline::kMemphis, false, chains, chain_length,
                           reuse_frac)
          .seconds);
  rows.push_back(row);

  PrintTable("Figure 2(c): eager vs lazy RDD caching (seconds, simulated)",
             {"NoCaching", "Eager", "MPH"}, rows);
  std::printf(
      "\npaper shape: Eager ~10x slower than NoCaching; MPH ~2x faster.\n"
      "measured   : Eager %.1fx slower; MPH %.1fx faster.\n",
      rows[0].seconds[1] / rows[0].seconds[0],
      rows[0].seconds[0] / rows[0].seconds[2]);
  return bench::Finish();
}
