// Ablations of MEMPHIS's design decisions (DESIGN.md §5): each row disables
// exactly one optimization on top of the full system, on the workload where
// the paper credits that optimization (Table 3 "Influential Techniques").

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;

namespace {

/// Runs a workload with one config knob flipped off, via a modified preset.
template <typename Runner>
double RunWith(Runner runner, void (*tweak)(SystemConfig*)) {
  // MakeConfig is pure; pipelines take a Baseline, so ablations reuse the
  // pipelines' internals through the two MEMPHIS presets where possible and
  // config-level knobs here otherwise.
  (void)tweak;
  return runner();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv, "ablations");
  std::vector<Row> rows;

  {  // Asynchronous operators + maxParallelize (HCV).
    Row row{"async ops (HCV)", {}};
    row.seconds.push_back(
        workloads::RunHcv(Baseline::kMemphisNoAsync, 1080000, 2500, 3, 6)
            .seconds);
    row.seconds.push_back(
        workloads::RunHcv(Baseline::kMemphis, 1080000, 2500, 3, 6).seconds);
    rows.push_back(row);
  }
  {  // Multi-level reuse (EN2DE).
    Row row{"multi-level reuse (EN2DE)", {}};
    row.seconds.push_back(
        workloads::RunEn2de(Baseline::kMemphisFineOnly, 1500).seconds);
    row.seconds.push_back(
        workloads::RunEn2de(Baseline::kMemphis, 1500).seconds);
    rows.push_back(row);
  }
  PrintTable("Ablations (off -> on, speedup = benefit of the optimization)",
             {"disabled", "enabled"}, rows);

  // Knob-level ablations: delayed caching on non-repeating Spark chains
  // (eager caching persists RDDs that are never reused -- cache writes and
  // evictions for nothing, the Section 5.2 motivation), and lineage
  // compaction on long CP chains.
  {
    using workloads::MakeConfig;
    auto run_spark_chains = [&](int delay_factor) {
      SystemConfig config = MakeConfig(Baseline::kMemphis);
      config.auto_parameter_tuning = false;
      config.delayed_caching = true;
      config.default_delay_factor = delay_factor;
      config.enable_gpu = false;
      MemphisSystem system(config);
      ExecutionContext& ctx = system.ctx();
      ctx.BindMatrixWithId("Xs", kernels::Rand(60000, 24, 0.0, 1.0, 1.0, 5),
                           "abl:spark");
      for (int c = 0; c < 24; ++c) {
        auto block = compiler::MakeBasicBlock();
        auto& dag = block->dag();
        compiler::HopPtr current = dag.Read("Xs");
        for (int i = 0; i < 4; ++i) {
          current = dag.Op("+", {current, dag.Literal(1.0 + c * 10 + i)});
        }
        dag.Write("out", dag.Op("transpose", {dag.Op("colSums", {current})}));
        system.Run(*block);
        ctx.FetchMatrix("out");
      }
      return system.ElapsedSeconds();
    };
    auto run_micro = [&](bool delayed, bool compaction) {
      SystemConfig config = MakeConfig(Baseline::kMemphis);
      config.delayed_caching = delayed;
      config.compaction = compaction;
      config.auto_parameter_tuning = delayed;  // Tuning implies delays.
      MemphisSystem system(config);
      ExecutionContext& ctx = system.ctx();
      ctx.BindMatrixWithId("Xm",
                           kernels::Rand(20000, 16, 0.0, 1.0, 1.0, 3),
                           "abl:X");
      auto block = compiler::MakeBasicBlock();
      {
        auto& dag = block->dag();
        compiler::HopPtr current = dag.Read("Xm");
        for (int i = 0; i < 24; ++i) {
          current = dag.Op("+", {current, dag.Literal(1.0 + i % 3)});
        }
        dag.Write("out", dag.Op("sum", {current}));
      }
      for (int i = 0; i < 40; ++i) system.Run(*block);
      return system.ElapsedSeconds();
    };
    std::vector<Row> knob_rows;
    knob_rows.push_back(Row{"delayed caching (SP, 0% reuse)",
                            {run_spark_chains(1), run_spark_chains(3)}});
    knob_rows.push_back(Row{"compaction (chain micro)",
                            {run_micro(true, false), run_micro(true, true)}});
    PrintTable("Knob ablations", {"disabled", "enabled"}, knob_rows);
  }

  // Multi-GPU scaling (Section 5.4): two independent scoring chains over
  // one vs two devices (separate caches per device).
  {
    using workloads::MakeConfig;
    auto run_devices = [&](int gpus) {
      SystemConfig config = MakeConfig(Baseline::kMemphis);
      config.num_gpus = gpus;
      config.mem_scale = 1.0;
      config.gpu_memory = 1 << 20;  // Small devices: pools fill during the
                                    // warm-up, so the measured round recycles
                                    // pointers instead of synchronizing on
                                    // cudaMalloc (Section 4.2).
      sim::CostModel cm;
      cm.gpu_gflops = 2.0;  // Kernel-bound regime.
      MemphisSystem system(config, cm);
      ExecutionContext& ctx = system.ctx();
      ctx.BindMatrixWithId("A", kernels::RandGaussian(192, 192, 7), "mg:A");
      ctx.BindMatrixWithId("B", kernels::RandGaussian(192, 192, 8), "mg:B");
      auto block = compiler::MakeBasicBlock();
      {
        auto& dag = block->dag();
        auto c1 = dag.Op("matmult", {dag.Op("matmult", {dag.Read("A"),
                                                        dag.Read("A")}),
                                     dag.Read("A")});
        auto c2 = dag.Op("matmult", {dag.Op("matmult", {dag.Read("B"),
                                                        dag.Read("B")}),
                                     dag.Read("B")});
        dag.Write("s", dag.Op("+", {dag.Op("sum", {c1}),
                                    dag.Op("sum", {c2})}));
      }
      // Warm-up round: fills the pointer pools (fresh cudaMallocs would
      // otherwise synchronize the devices, serializing the chains -- the
      // very overhead recycling removes).
      system.Run(*block);
      ctx.FetchScalar("s");
      const double warm = system.ElapsedSeconds();
      // Measured round on fresh inputs (new identities force recompute,
      // recycled pointers avoid synchronization).
      ctx.BindMatrixWithId("A", kernels::RandGaussian(192, 192, 17), "mg:A2");
      ctx.BindMatrixWithId("B", kernels::RandGaussian(192, 192, 18), "mg:B2");
      system.Run(*block);
      ctx.FetchScalar("s");
      return system.ElapsedSeconds() - warm;
    };
    std::vector<Row> gpu_rows;
    gpu_rows.push_back(Row{"2 GPUs vs 1 (indep. chains)",
                           {run_devices(1), run_devices(2)}});
    PrintTable("Multi-GPU scaling", {"1 GPU", "2 GPUs"}, gpu_rows);
  }

  // GPU recycling ablation (Figure 12(b) setting).
  {
    using workloads::MakeConfig;
    std::vector<Row> gpu_rows;
    Row row{"GPU recycling (ensemble)", {}};
    // Recycling off approximated by the eager-free Base allocator with
    // reuse still on is not expressible via presets; compare Base (eager
    // free, no reuse) against MPH with 0% duplicates: the delta isolates
    // recycling + pointer management.
    row.seconds.push_back(
        workloads::RunGpuEnsemble(Baseline::kBase, 128, 8, 0.0).seconds);
    row.seconds.push_back(
        workloads::RunGpuEnsemble(Baseline::kMemphis, 128, 8, 0.0).seconds);
    gpu_rows.push_back(row);
    PrintTable("GPU memory management ablation (no duplicate batches)",
               {"eager free", "recycling"}, gpu_rows);
  }
  return bench::Finish();
}
