// Google-benchmark micro benchmarks for the hot runtime primitives:
// lineage hashing/equality, cache probing, the GPU arena, and kernels.

#include <benchmark/benchmark.h>

#include "cache/lineage_cache.h"
#include "common/thread_pool.h"
#include "gpu/gpu_arena.h"
#include "lineage/lineage_item.h"
#include "matrix/kernels.h"
#include "obs/trace.h"

namespace memphis {
namespace {

LineageItemPtr Chain(int depth) {
  LineageItemPtr node = LineageItem::Leaf("extern", "X");
  for (int i = 0; i < depth; ++i) {
    node = LineageItem::Create("op", std::to_string(i % 4), {node});
  }
  return node;
}

void BM_LineageCreate(benchmark::State& state) {
  auto x = LineageItem::Leaf("extern", "X");
  for (auto _ : state) {
    benchmark::DoNotOptimize(LineageItem::Create("matmult", "", {x, x}));
  }
}
BENCHMARK(BM_LineageCreate);

void BM_LineageEqualsChain(benchmark::State& state) {
  auto a = Chain(static_cast<int>(state.range(0)));
  auto b = Chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LineageEquals(a, b));
  }
}
BENCHMARK(BM_LineageEqualsChain)->Arg(8)->Arg(64)->Arg(512);

void BM_LineageEqualsSharedIdentity(benchmark::State& state) {
  auto a = Chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LineageEquals(a, a));  // Identity short-circuit.
  }
}
BENCHMARK(BM_LineageEqualsSharedIdentity)->Arg(512);

void BM_CacheProbeHit(benchmark::State& state) {
  SystemConfig config;
  config = config.Scaled();
  sim::CostModel cm;
  spark::SparkContext spark(config, &cm);
  gpu::GpuContext gpu(config.gpu_memory, &cm);
  GpuCacheManager gpu_cache(&gpu, true);
  LineageCache cache(config, &cm, &spark, &gpu_cache);
  double now = 0.0;
  auto key = Chain(16);
  cache.PutHost(key, kernels::Rand(8, 8, 0, 1, 1.0, 1), 1.0, 1, &now);
  auto probe = Chain(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Reuse(probe, &now));
  }
}
BENCHMARK(BM_CacheProbeHit);

void BM_CacheProbeMiss(benchmark::State& state) {
  SystemConfig config;
  config = config.Scaled();
  sim::CostModel cm;
  spark::SparkContext spark(config, &cm);
  gpu::GpuContext gpu(config.gpu_memory, &cm);
  GpuCacheManager gpu_cache(&gpu, true);
  LineageCache cache(config, &cm, &spark, &gpu_cache);
  double now = 0.0;
  auto probe = Chain(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Reuse(probe, &now));
  }
}
BENCHMARK(BM_CacheProbeMiss);

// Observer effect (EXPERIMENTS.md): the same probe-hit loop with tracing
// off vs on. Arg(0) runs with the collector disabled -- each emission macro
// must cost one relaxed atomic load plus a branch, so this variant is the
// <2% overhead target against BM_CacheProbeHit. Arg(1) runs with live
// emission into the per-thread rings (ring wrap-around is expected and
// accounted; events are discarded at teardown).
void BM_CacheProbeHitTraced(benchmark::State& state) {
  SystemConfig config;
  config = config.Scaled();
  sim::CostModel cm;
  spark::SparkContext spark(config, &cm);
  gpu::GpuContext gpu(config.gpu_memory, &cm);
  GpuCacheManager gpu_cache(&gpu, true);
  LineageCache cache(config, &cm, &spark, &gpu_cache);
  double now = 0.0;
  auto key = Chain(16);
  cache.PutHost(key, kernels::Rand(8, 8, 0, 1, 1.0, 1), 1.0, 1, &now);
  auto probe = Chain(16);
  obs::EnableTracing(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Reuse(probe, &now));
  }
  obs::EnableTracing(false);
  obs::ResetTrace();
}
BENCHMARK(BM_CacheProbeHitTraced)->Arg(0)->Arg(1);

// Raw macro cost in isolation: a span pair and an instant per iteration.
void BM_TraceMacros(benchmark::State& state) {
  obs::EnableTracing(state.range(0) != 0);
  for (auto _ : state) {
    MEMPHIS_TRACE_SPAN1("bench", "span", "i", 1.0);
    MEMPHIS_TRACE_INSTANT1("bench", "instant", "i", 2.0);
  }
  obs::EnableTracing(false);
  obs::ResetTrace();
}
BENCHMARK(BM_TraceMacros)->Arg(0)->Arg(1);

void BM_ArenaAllocFree(benchmark::State& state) {
  gpu::GpuArena arena(64 << 20);
  for (auto _ : state) {
    auto handle = arena.Alloc(4096);
    arena.Free(*handle);
  }
}
BENCHMARK(BM_ArenaAllocFree);

void BM_MatMult(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  auto a = kernels::RandGaussian(n, n, 1);
  auto b = kernels::RandGaussian(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::MatMult(*a, *b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMult)->Arg(32)->Arg(128);

// Threaded-vs-serial kernels: Arg is the pool size. Results are bitwise
// identical at every size (DESIGN.md, "Threading model"); only wall-clock
// changes. items_processed reports flops so tooling prints effective flop/s.
void BM_MatMultThreaded(benchmark::State& state) {
  const size_t n = 1024;
  ThreadPool::Global().Resize(static_cast<int>(state.range(0)));
  auto a = kernels::RandGaussian(n, n, 1);
  auto b = kernels::RandGaussian(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::MatMult(*a, *b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  ThreadPool::Global().Resize(1);
}
BENCHMARK(BM_MatMultThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ElementwiseThreaded(benchmark::State& state) {
  const size_t n = 2048;  // 4M elements per operand.
  ThreadPool::Global().Resize(static_cast<int>(state.range(0)));
  auto a = kernels::RandGaussian(n, n, 3);
  auto b = kernels::RandGaussian(n, n, 4);
  for (auto _ : state) {
    auto sum = kernels::Binary(kernels::BinaryOp::kAdd, *a, *b);
    benchmark::DoNotOptimize(kernels::Unary(kernels::UnaryOp::kSigmoid, *sum));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
  ThreadPool::Global().Resize(1);
}
BENCHMARK(BM_ElementwiseThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_RowAggThreaded(benchmark::State& state) {
  ThreadPool::Global().Resize(static_cast<int>(state.range(0)));
  auto a = kernels::RandGaussian(4096, 512, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::RowSums(*a));
    benchmark::DoNotOptimize(kernels::ColSums(*a));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 4096 * 512);
  ThreadPool::Global().Resize(1);
}
BENCHMARK(BM_RowAggThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memphis

BENCHMARK_MAIN();
