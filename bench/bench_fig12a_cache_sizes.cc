// Figure 12(a): influence of driver cache sizes on reuse potential.
//
// Paper setup: the Fig. 11 micro with 1M instructions, 40% reusable, input
// sizes 2-10 GB, and driver caches of 900MB / 5GB / 30GB. Paper result: even
// the 900MB cache achieves 1.2x; for large inputs the 5GB cache yields
// slightly less than the 30GB cache (1.4x vs 1.6x) thanks to the robust
// eviction policy. Sizes here are dimension-scaled 1/1024 (DESIGN.md):
// 900MB -> 0.88MB, 5GB -> 5MB, 30GB -> 30MB.

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunL2svmMicro;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig12a_cache_sizes");
  const int configs = 8;
  const int iters = 12;
  const double reuse = 0.4;

  std::vector<Row> rows;
  for (double nominal_gb : {2.0, 4.0, 8.0, 10.0}) {
    const auto bytes =
        static_cast<size_t>(nominal_gb * (1 << 30) / 1024.0);  // Scaled.
    Row row{std::to_string(static_cast<int>(nominal_gb)) + "GB input", {}};
    row.seconds.push_back(
        RunL2svmMicro(Baseline::kBase, bytes, configs, iters, reuse).seconds);
    for (double cache_mb : {900.0 / 1024, 5.0 * 1024 / 1024, 30.0 * 1024 / 1024}) {
      row.seconds.push_back(
          RunL2svmMicro(Baseline::kMemphis, bytes, configs, iters, reuse,
                        cache_mb)
              .seconds);
    }
    rows.push_back(row);
  }
  PrintTable(
      "Figure 12(a): cache sizes vs reuse potential (40% reusable, "
      "1M insts nominal)",
      {"Base", "900MB", "5GB", "30GB"}, rows);
  std::printf(
      "paper shape: 900MB already 1.2x; at large inputs 5GB slightly below "
      "30GB\n(1.4x vs 1.6x) -- eviction policies retain high-value "
      "entries.\n");
  return bench::Finish();
}
