// Table 2: measured properties of the Spark, GPU, and CPU backends.
//
// Reports the calibrated cost-model properties alongside measured probe
// latencies of the simulated substrates (execution model, memory, exchange
// bandwidth, cache API), mirroring the paper's backend comparison.

#include <cstdio>

#include "bench/bench_util.h"
#include "gpu/gpu_context.h"
#include "matrix/kernels.h"
#include "sim/cost_model.h"
#include "spark/spark_context.h"

using namespace memphis;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "table2_backends");
  sim::CostModel cm;
  SystemConfig config;
  config = config.Scaled();
  spark::SparkContext sc(config, &cm);
  gpu::GpuContext gpu(config.gpu_memory, &cm);

  // Measured Spark exchange bandwidth: time a fixed shuffle volume.
  const double shuffle_gbps = 1e9 / cm.ShuffleTime(1e9) / 1e9;
  // Measured GPU host-to-device bandwidth (pageable).
  const double h2d_gbps = 1.0 / (cm.H2DTime(1e9) - cm.gpu_sync_latency);

  // Measured action latency: one count() job on a small RDD.
  auto m = kernels::Rand(1000, 8, 0, 1, 1.0, 1);
  auto rdd = sc.Parallelize("probe", m, 4);
  const double job_latency = sc.Count(rdd, 0.0).completed_at;

  // Measured GPU allocation latency.
  double now = 0.0;
  auto buffer = gpu.Malloc(4096, &now);
  (void)buffer;

  std::printf("Table 2: properties of Spark, GPU, and CPU backends\n\n");
  std::printf("%-8s%-8s%-13s%-12s%-11s%s\n", "backend", "exec.", "memory",
              "bandwidth", "cache-API", "workload");
  std::printf("%-8s%-8s%-13s%4.1f GB/s%-3s%-11s%s\n", "Spark", "lazy",
              "distributed", shuffle_gbps, "", "yes", "large data");
  std::printf("%-8s%-8s%-13s%4.1f GB/s%-3s%-11s%s\n", "GPU", "async",
              "small", h2d_gbps, "", "no", "mini-batch, DNN");
  std::printf("%-8s%-8s%-13s%-12s%-11s%s\n", "CPU", "eager", "varying",
              "   -", "no", "all");

  std::printf("\nmeasured probes (simulated):\n");
  std::printf("  spark job launch+count latency : %.1f ms\n",
              job_latency * 1e3);
  std::printf("  cudaMalloc latency (sync)      : %.1f us\n", now * 1e6);
  std::printf("  cluster storage capacity       : %.1f MB (scaled 1/1024)\n",
              static_cast<double>(sc.StorageCapacity()) / (1 << 20));
  std::printf("  device memory                  : %.1f MB (scaled 1/1024)\n",
              static_cast<double>(config.gpu_memory) / (1 << 20));
  return bench::Finish();
}
