// Figure 14(c): EN2DE -- pre-trained language translation scoring.
//
// Paper setup: GPU scoring of a 200K-word English news stream with
// pre-trained embeddings and a 4-layer FC scorer; words repeat with a
// heavy-tailed (Zipf) distribution. Paper result: MPH 5x over Base-G by
// reusing per-word predictions at the host; MPH-F (operator-at-a-time only)
// 4x via GPU pointer reuse; Clipper ~= MPH; PyTorch 2x over Base-G but
// 2.4x slower than MPH.

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunEn2de;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig14c_en2de");
  const size_t words = 2000;  // Nominal 200K, dimension-scaled.

  std::vector<Row> rows;
  Row row{"200K words (nominal)", {}};
  for (Baseline b : {Baseline::kBase, Baseline::kPyTorch, Baseline::kClipper,
                     Baseline::kMemphisFineOnly, Baseline::kMemphis}) {
    row.seconds.push_back(RunEn2de(b, words).seconds);
  }
  rows.push_back(row);
  PrintTable("Figure 14(c): EN2DE translation scoring",
             {"Base-G", "PyTorch", "Clipper", "MPH-F", "MPH"}, rows);
  std::printf(
      "paper shape: MPH 5x over Base-G (host prediction reuse); MPH-F 4x\n"
      "(GPU pointer reuse only); Clipper ~= MPH; PyTorch 2x over Base-G\n"
      "but 2.4x slower than MPH.\n");
  return bench::Finish();
}
