// Geo-distributed serving fabric benchmark (src/fabric/, DESIGN.md section
// 5j): three sections, each backing one acceptance gate in
// scripts/validate_bench.py.
//
//   ./bench_federated_serve [--smoke] [--trace=FILE] [--metrics=FILE]
//
// 1. Cross-site reuse: the same stale-bounded federated run with the fabric
//    store on vs off. The shared leg re-uses broadcast-derived
//    intermediates across sites (hit rate > 0); the isolated leg is exactly
//    0.000 by construction; both legs' per-round aggregates are
//    bitwise-identical (reuse is invisible in the values).
// 2. Async vs sync under skewed site speeds: staleness bound K=2 against
//    K=0 (which tests prove bitwise-identical to the synchronous
//    coordinator) over the same fleet with one 4x straggler. Async must
//    finish strictly earlier at bitwise-identical aggregates -- the
//    aggregate (tsmm of the static shard) is round-invariant, so staleness
//    moves only the schedule, never the math.
// 3. Site kill: in-flight requests at the dying site are classified exactly
//    once (completed / shed / failed-over, nothing silently dropped),
//    failed-over requests complete at the survivor.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "fabric/fabric.h"
#include "fabric/rounds.h"
#include "federated/federated.h"
#include "matrix/kernels.h"
#include "serve/workloads.h"

using namespace memphis;

namespace {

struct Scale {
  int rounds = 8;
  int sites = 3;
  size_t rows = 600;
  size_t cols = 8;
  size_t model_rows = 48;
  size_t model_cols = 12;
};

SystemConfig SiteConfig() {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  config.enable_gpu = false;
  config.cp_threads = 2;
  return config;
}

/// Per-round block: `wgram` derives only from the round's broadcast (the
/// cross-site reusable intermediate), `gram` only from the static local
/// shard (the round-invariant aggregate).
std::shared_ptr<compiler::BasicBlock> RoundBlock() {
  auto block = compiler::MakeBasicBlock();
  auto& dag = block->dag();
  dag.Write("wgram", dag.Op("tsmm", {dag.Read("w")}));
  dag.Write("gram", dag.Op("tsmm", {dag.Read("X")}));
  return block;
}

/// One stale-bounded federated run. Every round binds a fresh broadcast
/// under the id "w:round<r>" -- the reuse identity that makes the
/// broadcast-derived intermediates portable across sites.
fabric::StaleRoundReport RunFleet(const Scale& scale, int staleness_bound,
                                  double straggler_speed,
                                  fabric::FabricStore* store) {
  federated::FederatedCoordinator fed(scale.sites, SiteConfig());
  if (straggler_speed > 0.0 && scale.sites > 1) {
    fed.SetSiteSpeed(1, straggler_speed);
  }
  fed.Distribute("X", kernels::RandGaussian(scale.rows, scale.cols, 21));
  fabric::StaleRoundOptions options;
  options.rounds = scale.rounds;
  options.staleness_bound = staleness_bound;
  options.aggregate_var = "gram";
  options.store = store;
  options.store_tenant = "fleet";
  return fabric::RunStaleBoundedRounds(
      fed, RoundBlock,
      [&](int round) {
        fed.BroadcastBind(
            "w",
            kernels::RandGaussian(scale.model_rows, scale.model_cols,
                                  400 + static_cast<uint64_t>(round)),
            "w:round" + std::to_string(round));
      },
      options);
}

/// 1.0 iff every per-round aggregate of the two runs is bitwise-identical.
double BitwiseIdentical(const fabric::StaleRoundReport& a,
                        const fabric::StaleRoundReport& b) {
  if (a.aggregates.size() != b.aggregates.size()) return 0.0;
  for (size_t r = 0; r < a.aggregates.size(); ++r) {
    const MatrixPtr& left = a.aggregates[r];
    const MatrixPtr& right = b.aggregates[r];
    if (left == nullptr || right == nullptr) return 0.0;
    if (left->rows() != right->rows() || left->cols() != right->cols()) {
      return 0.0;
    }
    if (std::memcmp(left->data(), right->data(),
                    left->rows() * left->cols() * sizeof(double)) != 0) {
      return 0.0;
    }
  }
  return 1.0;
}

void RunCrossSiteReuse(const Scale& scale) {
  const fabric::StaleRoundReport isolated =
      RunFleet(scale, /*staleness_bound=*/1, /*straggler_speed=*/0.0,
               /*store=*/nullptr);
  fabric::FabricStore store;
  const fabric::StaleRoundReport shared =
      RunFleet(scale, /*staleness_bound=*/1, /*straggler_speed=*/0.0, &store);

  const double site_rounds =
      static_cast<double>(scale.sites) * static_cast<double>(scale.rounds);
  bench::PrintTable(
      "Federated cross-site reuse", {"isolated", "shared"},
      {{"cross_site_hit_rate",
        {static_cast<double>(isolated.cross_site_warms) / site_rounds,
         static_cast<double>(shared.cross_site_warms) / site_rounds}},
       {"fabric_store_entries",
        {0.0, static_cast<double>(store.TotalEntries())}},
       {"final_seconds", {isolated.final_seconds, shared.final_seconds}},
       {"bitwise_identical", {1.0, BitwiseIdentical(isolated, shared)}}});
}

void RunAsyncVsSync(const Scale& scale) {
  // K=0 is the synchronous coordinator (bitwise: tests/fabric_test.cc);
  // K=2 lets the fleet run ahead of the 4x straggler.
  const fabric::StaleRoundReport sync =
      RunFleet(scale, /*staleness_bound=*/0, /*straggler_speed=*/0.25,
               /*store=*/nullptr);
  const fabric::StaleRoundReport async =
      RunFleet(scale, /*staleness_bound=*/2, /*straggler_speed=*/0.25,
               /*store=*/nullptr);

  const double rounds = static_cast<double>(scale.rounds);
  bench::PrintTable(
      "Federated async vs sync (skewed speeds)", {"sync", "async"},
      {{"final_seconds", {sync.final_seconds, async.final_seconds}},
       {"rounds_per_second",
        {sync.final_seconds > 0 ? rounds / sync.final_seconds : 0.0,
         async.final_seconds > 0 ? rounds / async.final_seconds : 0.0}},
       {"stale_contributions",
        {static_cast<double>(sync.stale_contributions),
         static_cast<double>(async.stale_contributions)}},
       {"fresh_transfers", {static_cast<double>(sync.fresh_transfers),
                            static_cast<double>(async.fresh_transfers)}},
       {"bitwise_identical", {1.0, BitwiseIdentical(sync, async)}}});
}

void RunSiteKill(const Scale& scale) {
  fabric::FabricConfig config;
  config.num_sites = 2;
  config.serve.workers = 1;
  config.serve.session.cp_threads = ThreadPool::Global().num_threads();
  fabric::ServingFabric fabric(config);

  const int victim = fabric.SiteOf("anchor");
  std::vector<std::string> tenants;
  for (int t = 0; static_cast<int>(tenants.size()) < 6 && t < 512; ++t) {
    const std::string tenant = "burst" + std::to_string(t);
    if (fabric.SiteOf(tenant) == victim) tenants.push_back(tenant);
  }

  // Freeze the victim so the burst is still in flight when the site dies.
  fabric.site_manager(victim).PauseForTest();
  std::vector<fabric::FabricTicketPtr> tickets;
  for (size_t i = 0; i < tenants.size(); ++i) {
    serve::ScriptRequest request = serve::MakeWorkloadRequest(
        tenants[i], "stats", scale.rows / 4, scale.cols, 31);
    if (i % 2 == 1) request.deadline_ms = 60000;  // Shed, not replayed.
    tickets.push_back(fabric.Submit(request));
  }

  const fabric::RebalanceReport report = fabric.KillSite(victim);
  int resolved_completed = 0;
  for (const fabric::FabricTicketPtr& ticket : tickets) {
    if (fabric.Resolve(ticket).outcome == serve::RequestOutcome::kCompleted) {
      ++resolved_completed;
    }
  }
  fabric.Shutdown();

  const int accounted = report.completed + report.shed + report.failed_over;
  bench::PrintTable(
      "Fabric site-kill accounting", {"count"},
      {{"affected", {static_cast<double>(report.affected)}},
       {"completed", {static_cast<double>(report.completed)}},
       {"shed", {static_cast<double>(report.shed)}},
       {"failed_over", {static_cast<double>(report.failed_over)}},
       {"accounted", {static_cast<double>(accounted)}},
       {"exactly_once", {report.affected == accounted ? 1.0 : 0.0}},
       {"resolved_completed", {static_cast<double>(resolved_completed)}},
       {"rewarmed_entries", {static_cast<double>(report.rewarmed_entries)}}});
}

}  // namespace

int main(int argc, char** argv) {
  Scale scale;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = {/*rounds=*/4, /*sites=*/2, /*rows=*/240, /*cols=*/6,
               /*model_rows=*/24, /*model_cols=*/8};
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::Init(static_cast<int>(passthrough.size()), passthrough.data(),
              "federated_serve");

  std::printf("federated serve: %d sites x %d rounds, X = %zux%zu, "
              "w = %zux%zu\n",
              scale.sites, scale.rounds, scale.rows, scale.cols,
              scale.model_rows, scale.model_cols);

  RunCrossSiteReuse(scale);
  RunAsyncVsSync(scale);
  RunSiteKill(scale);

  return bench::Finish();
}
