// Figure 11: basic lineage tracing and reuse overhead (micro benchmarks).
//
// (a) L2SVM core with fixed instruction count, varying input sizes
//     [800B..8MB] and reuse fractions: for small inputs tracing costs ~1.3x
//     and probing ~2x over Base; for larger inputs the overheads vanish and
//     reuse yields 1.1x (20%) to 3x (80%).
// (b) Fixed 8MB input, varying instruction count: probe overhead grows to
//     ~15% while 20% reuse already amortizes it and 40% gives ~1.5x.
//     An unbounded cache (40%INF) is no better than the default 5GB cache.

#include <cmath>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/util.h"
#include "workloads/builtins.h"
#include "workloads/datasets.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunL2svmMicro;

namespace {

/// Baselines emulating the paper's Trace / Probe settings.
double RunSetting(const char* setting, size_t bytes, int configs, int iters,
                  double reuse, double cache_mb = 0) {
  using workloads::MakeConfig;
  using workloads::MakeCostModel;
  if (std::string(setting) == "Trace" || std::string(setting) == "Probe") {
    // Not public baselines: adapt the Base preset.
    SystemConfig config = MakeConfig(Baseline::kBase);
    config.reuse_mode = std::string(setting) == "Trace"
                            ? ReuseMode::kTraceOnly
                            : ReuseMode::kProbeOnly;
    config.enable_gpu = false;  // Same environment as RunL2svmMicro.
    // Run through the micro harness manually (same code path as
    // RunL2svmMicro, reuse fraction zero so probes never hit).
    // Reuse RunL2svmMicro by temporarily expressing the mode as a config:
    // simplest is to copy its logic via the Memphis baseline with puts off,
    // which is exactly ProbeOnly; TraceOnly disables probes as well.
    MemphisSystem system(config, MakeCostModel(Baseline::kBase));
    ExecutionContext& ctx = system.ctx();
    const size_t cols = 10;
    const size_t rows = std::max<size_t>(8, bytes / (cols * 8));
    auto data = workloads::SyntheticClassification(rows, cols, 8);
    ctx.BindMatrixWithId("Xm", data.X, "micro:X");
    ctx.BindMatrixWithId("ym", data.y, "micro:y");
    Rng rng(9);
    workloads::L2Svm svm;
    for (int c = 0; c < configs; ++c) {
      svm.Train(system, "Xm", "ym", std::pow(10.0, rng.NextDouble(-4, 0)),
                iters, "wm");
    }
    return system.ElapsedSeconds();
  }
  Baseline baseline =
      std::string(setting) == "Base" ? Baseline::kBase : Baseline::kMemphis;
  return RunL2svmMicro(baseline, bytes, configs, iters, reuse, cache_mb,
                       /*seed=*/8 + static_cast<uint64_t>(reuse * 100))
      .seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig11_reuse_overhead");
  const int configs = 8;
  const int iters = 12;

  // --- Figure 11(a): varying input sizes ----------------------------------
  {
    std::vector<Row> rows;
    for (size_t bytes : {size_t(800), size_t(8) << 10, size_t(800) << 10,
                         size_t(4) << 20}) {
      Row row{FormatBytes(static_cast<double>(bytes)), {}};
      row.seconds.push_back(RunSetting("Base", bytes, configs, iters, 0));
      row.seconds.push_back(RunSetting("Trace", bytes, configs, iters, 0));
      row.seconds.push_back(RunSetting("Probe", bytes, configs, iters, 0));
      row.seconds.push_back(RunSetting("MPH", bytes, configs, iters, 0.2));
      row.seconds.push_back(RunSetting("MPH", bytes, configs, iters, 0.4));
      row.seconds.push_back(RunSetting("MPH", bytes, configs, iters, 0.8));
      rows.push_back(row);
    }
    PrintTable(
        "Figure 11(a): reuse overhead vs input size (2M instructions "
        "nominal; sizes dimension-scaled)",
        {"Base", "Trace", "Probe", "20%", "40%", "80%"}, rows);
    std::printf(
        "paper shape: small inputs dominated by tracing (1.3x) / probing "
        "(2x)\noverheads; at 8MB reuse wins 1.1x (20%%) to 3x (80%%).\n");
  }

  // --- Figure 11(b): varying instruction counts -----------------------------
  {
    std::vector<Row> rows;
    const size_t bytes = size_t(2) << 20;
    for (int scale : {1, 2, 3, 5}) {
      Row row{std::to_string(scale) + "M insts (nominal)", {}};
      row.seconds.push_back(
          RunSetting("Base", bytes, configs * scale, iters, 0));
      row.seconds.push_back(
          RunSetting("Probe", bytes, configs * scale, iters, 0));
      row.seconds.push_back(
          RunSetting("MPH", bytes, configs * scale, iters, 0.2));
      row.seconds.push_back(
          RunSetting("MPH", bytes, configs * scale, iters, 0.4));
      // 40%INF: effectively unbounded driver cache.
      row.seconds.push_back(
          RunSetting("MPH", bytes, configs * scale, iters, 0.4, 30000));
      rows.push_back(row);
    }
    PrintTable("Figure 11(b): reuse overhead vs instruction count (8MB input)",
               {"Base", "Probe", "20%", "40%", "40%INF"}, rows);
    std::printf(
        "paper shape: probe overhead <=15%% at 5M insts; 20%% reuse "
        "amortizes it;\n40%% gives ~1.5x; 40%%INF is no better than the "
        "bounded cache.\n");
  }
  return bench::Finish();
}
