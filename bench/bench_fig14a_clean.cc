// Figure 14(a): CLEAN -- enumeration of data cleaning pipelines.
//
// Paper setup: 12 cleaning pipelines (imputation, outlier handling,
// normalization, undersampling, PCA) with data-dependent primitive order,
// scored by a downstream L2SVM, over APS replicated by a scale factor.
// Paper result: MPH 3.9x/3.5x/2.3x over Base/LIMA/Base-P at sf=120.

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunClean;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig14a_clean");
  std::vector<Row> rows;
  for (int scale : {15, 60, 120}) {
    Row row{"sf=" + std::to_string(scale), {}};
    for (Baseline b : {Baseline::kBase, Baseline::kBasePar, Baseline::kLima,
                       Baseline::kMemphis}) {
      row.seconds.push_back(RunClean(b, scale).seconds);
    }
    rows.push_back(row);
  }
  PrintTable("Figure 14(a): CLEAN data cleaning pipeline enumeration (APS)",
             {"Base", "Base-P", "LIMA", "MPH"}, rows);
  std::printf(
      "paper shape: MPH 3.9x/3.5x/2.3x over Base/LIMA/Base-P at sf=120 by\n"
      "reusing repeated primitives despite repeated cache spills.\n");
  return bench::Finish();
}
