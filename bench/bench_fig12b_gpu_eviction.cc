// Figure 12(b): GPU backend tracing overhead and cache eviction.
//
// Paper setup: ensemble CNN scoring of 200K 32x32 images (two CNNs with
// distinct allocation patterns) under varying batch sizes and reuse
// settings, with images identified by pixel-encoded ids. Paper result:
// probing costs ~8% at batch size 2 and is offset by only 20% reuse; 20/40/
// 80% duplicate batches yield 1.3x/1.6x/4x despite frequent evictions.

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunGpuEnsemble;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig12b_gpu_eviction");
  const size_t images = 192;  // Nominal 200K, dimension-scaled.

  std::vector<Row> rows;
  for (int batch : {2, 8, 32}) {
    Row row{"batch=" + std::to_string(batch), {}};
    row.seconds.push_back(
        RunGpuEnsemble(Baseline::kBase, images, batch, 0.0).seconds);
    for (double duplicates : {0.0, 0.2, 0.4, 0.8}) {
      row.seconds.push_back(
          RunGpuEnsemble(Baseline::kMemphis, images, batch, duplicates)
              .seconds);
    }
    rows.push_back(row);
  }
  PrintTable(
      "Figure 12(b): GPU eviction & reuse (ensemble CNN scoring, 200K "
      "images nominal)",
      {"Base", "0%", "20%", "40%", "80%"}, rows);
  std::printf(
      "paper shape: probe overhead ~8%% at batch 2, offset by 20%% reuse;\n"
      "20/40/80%% duplicates give 1.3x/1.6x/4x despite frequent "
      "evictions.\n");
  return bench::Finish();
}
