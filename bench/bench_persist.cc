// Durable-tier benchmark: warm restart over a persistent lineage store vs a
// cold start on an empty directory.
//
//   ./bench_persist [--smoke] [--trace=FILE] [--metrics=FILE]
//
// Two phases over the SAME persist directory. The cold phase starts from an
// empty directory, runs per-tenant workloads, and shuts down -- which spills
// the shared store's deterministic entries into the segment log. The warm
// phase constructs a fresh SessionManager over that directory, as a restarted
// process would, and replays the same requests: rehydration pre-populates the
// tenant partitions, so the *first* request of every tenant -- the one that
// can only hit if bytes survived the restart -- probes warm. The headline
// rows compare first-request hit rates (cold ~0, warm > 0) and first-request
// latency; bitwise result agreement between phases is reported as an
// identity check.
//
// scripts/validate_bench.py checks the emitted BENCH_persist.json: the warm
// first-request hit rate must beat cold's, rehydration and disk-write
// counters must be non-zero, no corrupt records may have been seen, and
// every identity check must be exactly 1.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.h"
#include "serve/session_manager.h"
#include "serve/workloads.h"

using namespace memphis;

namespace {

struct Traffic {
  int tenants = 3;
  int requests_per_tenant = 6;
  size_t rows = 384;
  size_t cols = 24;
};

/// One phase's outcome: first-request reuse (the restart claim) plus the
/// per-tenant result values for the cross-phase identity check.
struct PhaseStats {
  std::vector<double> latencies_ms;
  std::vector<double> first_latencies_ms;
  int64_t first_probes = 0;
  int64_t first_hits = 0;
  int64_t cross_session_hits = 0;
  int64_t warmed = 0;
  int completed = 0;
  int failed = 0;
  std::vector<double> tenant_values;  // Result of each tenant's request 0.

  double FirstHitRate() const {
    return first_probes > 0 ? static_cast<double>(first_hits) /
                                  static_cast<double>(first_probes)
                            : 0.0;
  }
};

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Runs every tenant's request sequence against a manager persisting to
/// `dir`. Each tenant repeats ONE workload with ONE seed so its lineage is
/// fully deterministic -- exactly the entries the harvest policy spills.
PhaseStats RunPhase(const std::string& dir, const Traffic& traffic) {
  serve::ServeConfig config;
  config.workers = 4;
  config.shared_cache = true;
  config.store_persist_dir = dir;
  config.store_persist_budget = 64ull << 20;
  serve::SessionManager manager(config);

  const std::vector<std::string> names = serve::WorkloadNames();
  PhaseStats stats;
  stats.tenant_values.resize(traffic.tenants, 0.0);
  for (int t = 0; t < traffic.tenants; ++t) {
    const std::string tenant = "tenant" + std::to_string(t);
    for (int r = 0; r < traffic.requests_per_tenant; ++r) {
      serve::RequestTicketPtr ticket = manager.Submit(
          serve::MakeWorkloadRequest(tenant, names[t % names.size()],
                                     traffic.rows, traffic.cols,
                                     /*seed=*/11 + t));
      ticket->Wait();
      const serve::RequestResult& result = ticket->result();
      if (result.outcome != serve::RequestOutcome::kCompleted) {
        ++stats.failed;
        continue;
      }
      ++stats.completed;
      stats.latencies_ms.push_back(result.total_ms);
      stats.cross_session_hits += result.cross_session_hits;
      stats.warmed += result.warmed_entries;
      if (r == 0) {
        stats.first_latencies_ms.push_back(result.total_ms);
        stats.first_probes += result.cache_probes;
        stats.first_hits += result.cache_hits;
        if (result.has_result) stats.tenant_values[t] = result.result_value;
      }
    }
  }
  manager.Shutdown();  // Spills the shared store into the segment log.
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  Traffic traffic;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      traffic = {/*tenants=*/2, /*requests_per_tenant=*/3, /*rows=*/128,
                 /*cols=*/12};
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::Init(static_cast<int>(passthrough.size()), passthrough.data(),
              "persist");

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("memphis-bench-persist-" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);

  std::printf("persist traffic: %d tenants x %d requests, X = %zux%zu, "
              "dir = %s\n",
              traffic.tenants, traffic.requests_per_tenant, traffic.rows,
              traffic.cols, dir.c_str());

  const PhaseStats cold = RunPhase(dir.string(), traffic);
  const PhaseStats warm = RunPhase(dir.string(), traffic);

  const int tenants = traffic.tenants;
  bench::PrintTable(
      "Persist warm restart, first request per tenant", {"cold", "warm"},
      {{"lineage_hit_rate", {cold.FirstHitRate(), warm.FirstHitRate()}},
       {"cross_session_hits_per_req",
        {cold.completed > 0 ? static_cast<double>(cold.cross_session_hits) /
                                  cold.completed
                            : 0.0,
         warm.completed > 0 ? static_cast<double>(warm.cross_session_hits) /
                                  warm.completed
                            : 0.0}},
       {"warmed_per_req",
        {cold.completed > 0
             ? static_cast<double>(cold.warmed) / cold.completed
             : 0.0,
         warm.completed > 0
             ? static_cast<double>(warm.warmed) / warm.completed
             : 0.0}}});

  bench::PrintTable(
      "Persist restart latency (s)", {"cold", "warm"},
      {{"first_request_mean", {Mean(cold.first_latencies_ms) / 1e3,
                               Mean(warm.first_latencies_ms) / 1e3}},
       {"mean", {Mean(cold.latencies_ms) / 1e3,
                 Mean(warm.latencies_ms) / 1e3}}});

  // Identity checks: a warm restart must change nothing about the answers.
  // 1 = this tenant's first-request result is bitwise identical across the
  // restart (and both phases completed every request).
  std::vector<bench::Row> identities;
  for (int t = 0; t < tenants; ++t) {
    const bool same =
        std::memcmp(&cold.tenant_values[t], &warm.tenant_values[t],
                    sizeof(double)) == 0;
    identities.push_back({"tenant" + std::to_string(t),
                          {same && cold.failed == 0 && warm.failed == 0
                               ? 1.0
                               : 0.0}});
  }
  bench::PrintTable("Persist identity checks (1 = warm equals cold)",
                    {"identical"}, identities);

  std::printf("\nfirst-request hit rate: cold=%.3f warm=%.3f; warm "
              "rehydrated the store before any request ran\n",
              cold.FirstHitRate(), warm.FirstHitRate());

  fs::remove_all(dir, ec);
  return bench::Finish();
}
