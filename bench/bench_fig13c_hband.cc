// Figure 13(c): HBAND -- Hyperband-style model search + weighted ensemble.
//
// Paper setup: successive halving over L2SVM and multinomial logistic
// regression (reg list halves, iterations double per bracket), then a
// random search over 1K ensemble weight configurations. Paper result: MPH
// 2.6x/2.5x over Base at 5GB/20GB; ~40% over HELIX and LIMA.

#include "bench/bench_util.h"
#include "workloads/datasets.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunHband;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig13c_hband");
  const size_t cols = 1500;
  std::vector<Row> rows;
  for (size_t nominal_rows : {425000ull, 850000ull}) {
    const double gb = workloads::NominalGb(nominal_rows, cols);
    char label[64];
    std::snprintf(label, sizeof(label), "%.0fGB input", gb);
    Row row{label, {}};
    for (Baseline b : {Baseline::kBase, Baseline::kLima, Baseline::kHelix,
                       Baseline::kMemphis}) {
      row.seconds.push_back(
          RunHband(b, nominal_rows, cols, /*start_configs=*/8,
                   /*brackets=*/3)
              .seconds);
    }
    rows.push_back(row);
  }
  PrintTable("Figure 13(c): HBAND model search + weighted ensemble",
             {"Base", "LIMA", "HELIX", "MPH"}, rows);
  std::printf(
      "paper shape: MPH 2.6x/2.5x over Base (reusing halved-config\n"
      "iteration prefixes and the XB products of the ensemble search);\n"
      "~40%% over HELIX/LIMA.\n");
  return bench::Finish();
}
