#ifndef MEMPHIS_BENCH_BENCH_UTIL_H_
#define MEMPHIS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "workloads/pipelines.h"

namespace memphis::bench {

/// One measured series point: a configuration label (x-axis) and the
/// simulated seconds per baseline (series).
struct Row {
  std::string config;
  std::vector<double> seconds;
};

/// Prints a paper-style series table: one row per configuration, one column
/// per baseline, plus the speedup of the last column's baseline over the
/// first (typically MPH vs Base).
inline void PrintTable(const std::string& title,
                       const std::vector<std::string>& series,
                       const std::vector<Row>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-26s", "config");
  for (const auto& name : series) std::printf("%14s", name.c_str());
  std::printf("%14s\n", "speedup");
  for (const auto& row : rows) {
    std::printf("%-26s", row.config.c_str());
    for (double seconds : row.seconds) std::printf("%13.4fs", seconds);
    if (row.seconds.size() >= 2 && row.seconds.back() > 0) {
      std::printf("%13.2fx", row.seconds.front() / row.seconds.back());
    }
    std::printf("\n");
  }
}

inline const char* Name(workloads::Baseline baseline) {
  return workloads::ToString(baseline);
}

}  // namespace memphis::bench

#endif  // MEMPHIS_BENCH_BENCH_UTIL_H_
