#ifndef MEMPHIS_BENCH_BENCH_UTIL_H_
#define MEMPHIS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/flags.h"
#include "obs/metrics.h"
#include "workloads/pipelines.h"

namespace memphis::bench {

/// One measured series point: a configuration label (x-axis) and the
/// simulated seconds per baseline (series).
struct Row {
  std::string config;
  std::vector<double> seconds;
};

/// A printed table, retained so Finish() can replay it into the result JSON.
struct Table {
  std::string title;
  std::vector<std::string> series;
  std::vector<Row> rows;
};

namespace internal {

struct Session {
  std::string name;
  std::vector<std::string> args;
  std::vector<Table> tables;
  std::chrono::steady_clock::time_point start;
};

inline Session& GetSession() {
  static Session session;
  return session;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace internal

/// Every bench binary calls Init(argc, argv, "<figure>") first: parses the
/// shared observability flags (--trace=<file> / --metrics=<file>) and starts
/// the wall clock for the machine-readable result file.
inline void Init(int argc, char** argv, const std::string& name) {
  internal::Session& session = internal::GetSession();
  session.name = name;
  session.start = std::chrono::steady_clock::now();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!obs::ParseObsFlag(arg)) {
      std::fprintf(stderr,
                   "%s: unknown flag %s (expected --trace=<file>, "
                   "--metrics=<file>, --journal=<file>, or --flight=<dir>)\n",
                   name.c_str(), arg.c_str());
      std::exit(2);
    }
    session.args.push_back(arg);
  }
}

/// Prints a paper-style series table: one row per configuration, one column
/// per baseline, plus the speedup of the last column's baseline over the
/// first (typically MPH vs Base). The table is also retained for Finish().
inline void PrintTable(const std::string& title,
                       const std::vector<std::string>& series,
                       const std::vector<Row>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-26s", "config");
  for (const auto& name : series) std::printf("%14s", name.c_str());
  std::printf("%14s\n", "speedup");
  for (const auto& row : rows) {
    std::printf("%-26s", row.config.c_str());
    for (double seconds : row.seconds) std::printf("%13.4fs", seconds);
    if (row.seconds.size() >= 2 && row.seconds.back() > 0) {
      std::printf("%13.2fx", row.seconds.front() / row.seconds.back());
    }
    std::printf("\n");
  }
  internal::GetSession().tables.push_back({title, series, rows});
}

/// Writes BENCH_<name>.json next to the binary's working directory -- the
/// machine-readable twin of every printed table: bench name, flags, wall
/// milliseconds, total simulated seconds, the rows, and a snapshot of the
/// process-wide metrics registry (every ExecutionContext flushed its
/// counters there on destruction). Also writes the --trace/--metrics
/// outputs if requested. Returns the process exit code.
inline int Finish() {
  internal::Session& session = internal::GetSession();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - session.start)
          .count();
  double sim_seconds = 0.0;
  for (const Table& table : session.tables) {
    for (const Row& row : table.rows) {
      for (double seconds : row.seconds) sim_seconds += seconds;
    }
  }

  const std::string path = "BENCH_" + session.name + ".json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"" << internal::JsonEscape(session.name)
      << "\",\n  \"args\": [";
  for (size_t i = 0; i < session.args.size(); ++i) {
    if (i > 0) out << ", ";
    out << '"' << internal::JsonEscape(session.args[i]) << '"';
  }
  out << "],\n  \"wall_ms\": " << wall_ms
      << ",\n  \"sim_seconds_total\": " << sim_seconds
      << ",\n  \"tables\": [";
  for (size_t t = 0; t < session.tables.size(); ++t) {
    const Table& table = session.tables[t];
    if (t > 0) out << ",";
    out << "\n    {\"title\": \"" << internal::JsonEscape(table.title)
        << "\", \"series\": [";
    for (size_t i = 0; i < table.series.size(); ++i) {
      if (i > 0) out << ", ";
      out << '"' << internal::JsonEscape(table.series[i]) << '"';
    }
    out << "], \"rows\": [";
    for (size_t r = 0; r < table.rows.size(); ++r) {
      const Row& row = table.rows[r];
      if (r > 0) out << ", ";
      out << "{\"config\": \"" << internal::JsonEscape(row.config)
          << "\", \"seconds\": [";
      for (size_t i = 0; i < row.seconds.size(); ++i) {
        if (i > 0) out << ", ";
        out << row.seconds[i];
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "\n  ],\n  \"metrics\": " << obs::MetricsRegistry::Global().ToJson()
      << "\n}\n";
  const bool wrote_result = out.good();
  out.close();
  std::printf("\nwrote %s\n", path.c_str());

  const bool wrote_obs = obs::WriteObsOutputs();
  if (!obs::TracePath().empty()) {
    std::printf("wrote %s (load in https://ui.perfetto.dev)\n",
                obs::TracePath().c_str());
  }
  if (!obs::MetricsPath().empty()) {
    std::printf("wrote %s\n", obs::MetricsPath().c_str());
  }
  if (!obs::JournalPath().empty()) {
    std::printf("wrote %s (explain with memphis_explain)\n",
                obs::JournalPath().c_str());
  }
  return wrote_result && wrote_obs ? 0 : 1;
}

inline const char* Name(workloads::Baseline baseline) {
  return workloads::ToString(baseline);
}

}  // namespace memphis::bench

#endif  // MEMPHIS_BENCH_BENCH_UTIL_H_
