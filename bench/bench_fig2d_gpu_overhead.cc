// Figure 2(d): GPU execution overhead breakdown.
//
// Paper setup: one affine layer with ReLU for 10 epochs of 1K mini-batches
// of 128 rows, forcing each kernel to allocate output memory, transfer the
// result to the host, and deallocate. Paper result: memory allocation/free
// takes 4.6x and the data copy 9x the actual computation.

#include <cstdio>

#include "bench/bench_util.h"
#include "gpu/gpu_context.h"
#include "matrix/kernels.h"
#include "matrix/nn_kernels.h"
#include "sim/cost_model.h"

using namespace memphis;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig2d_gpu_overhead");
  sim::CostModel cost_model;
  gpu::GpuContext gpu(48ull << 20, &cost_model);

  const size_t batch = 128;
  const size_t in_features = 469;  // KDD98-like width.
  const size_t out_features = 500;
  const int steps = 10 * 100;  // 10 epochs x 1K batches nominal, scaled.

  auto x = kernels::RandGaussian(batch, in_features, 1);
  auto w = kernels::RandGaussian(in_features, out_features, 2);
  auto bias = MatrixBlock::Create(1, out_features, 0.01);
  // The numeric result is identical every step; compute it once and charge
  // the virtual device per step (virtual time, real data).
  MatrixPtr activation = kernels::Relu(*kernels::Affine(*x, *w, *bias));

  const double flops =
      2.0 * batch * in_features * out_features + 2.0 * batch * out_features;
  const size_t out_bytes = batch * out_features * sizeof(double);

  double now = 0.0;
  for (int step = 0; step < steps; ++step) {
    auto buffer = gpu.Malloc(out_bytes, &now);
    gpu.LaunchKernel(*buffer, activation, flops,
                     static_cast<double>(out_bytes), &now);
    gpu.CopyD2H(*buffer, &now);
    gpu.Free(*buffer, &now);
  }

  const auto& stats = gpu.stats();
  const double compute = stats.kernel_time;
  std::printf("Figure 2(d): GPU overhead breakdown (affine+ReLU, %d steps)\n",
              steps);
  std::printf("%-22s%12s%12s\n", "component", "seconds", "vs compute");
  std::printf("%-22s%11.4fs%11.2fx\n", "computation", compute, 1.0);
  std::printf("%-22s%11.4fs%11.2fx\n", "malloc+free",
              stats.malloc_time + stats.free_time,
              (stats.malloc_time + stats.free_time) / compute);
  std::printf("%-22s%11.4fs%11.2fx\n", "device-to-host copy",
              stats.copy_time.value(), stats.copy_time / compute);
  std::printf("\npaper shape: alloc/free 4.6x and copy 9x the computation.\n");
  return bench::Finish();
}
