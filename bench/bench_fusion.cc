// Fused vs unfused execution, both clock domains:
//
//  * "micro" (wall clock): a 6-op elementwise chain over 2048x2048 inputs,
//    reuse disabled so every run executes. Unfused materializes five
//    intermediates (32 MB each) and makes one full memory pass per op; the
//    fused tile interpreter streams cache-sized tiles through the whole op
//    sequence in a single pass. min-of-5 after a warm-up run.
//  * "pipelines" (simulated seconds): fig13a/fig13b/fig14a through the
//    standard workload entry points with MPH-NF (fusion off) vs MPH.
//
// The identity table records the bitwise/quality equalities (1.0 = equal)
// that validate_bench.py gates on: fusion must never change results.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "bench/bench_util.h"
#include "matrix/kernels.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunClean;
using workloads::RunHcv;
using workloads::RunPnmf;
using workloads::RunResult;

namespace {

constexpr size_t kMicroRows = 2048;
constexpr size_t kMicroCols = 2048;
constexpr int kMicroReps = 5;

SystemConfig MicroConfig(bool fusion) {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kNone;  // Pure execution: no cache work.
  config.mem_scale = 1.0;
  config.operation_memory = 1ull << 30;  // Everything stays CP-local.
  config.gpu_offload_min_flops = 1e15;
  config.operator_fusion = fusion;
  return config;
}

std::shared_ptr<compiler::BasicBlock> MicroBlock() {
  auto block = compiler::MakeBasicBlock();
  auto& dag = block->dag();
  auto x = dag.Read("X");
  auto y = dag.Read("Y");
  auto t = dag.Op("*", {x, y});
  t = dag.Op("+", {t, x});
  t = dag.Op("-", {t, y});
  t = dag.Op("abs", {t});
  t = dag.Op("sqrt", {t});
  t = dag.Op("sigmoid", {t});
  dag.Write("out", t);
  return block;
}

double TimeMicro(bool fusion, const MatrixPtr& x, const MatrixPtr& y,
                 MatrixPtr* out) {
  MemphisSystem system(MicroConfig(fusion));
  system.ctx().BindMatrix("X", x);
  system.ctx().BindMatrix("Y", y);
  auto block = MicroBlock();
  system.Run(*block);  // Warm-up: compiles the block, faults pages in.
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kMicroReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    system.Run(*block);
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  }
  *out = system.ctx().FetchMatrix("out");
  return best;
}

bool BitwiseEqual(const MatrixBlock& a, const MatrixBlock& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fusion");

  auto x = kernels::RandGaussian(kMicroRows, kMicroCols, 61);
  auto y = kernels::RandGaussian(kMicroRows, kMicroCols, 62);
  MatrixPtr unfused_out, fused_out;
  const double unfused_wall = TimeMicro(false, x, y, &unfused_out);
  const double fused_wall = TimeMicro(true, x, y, &fused_out);
  PrintTable("Fusion micro: 6-op elementwise chain, wall seconds (min of 5)",
             {"unfused", "fused"},
             {{"2048x2048 chain", {unfused_wall, fused_wall}}});

  std::vector<Row> identity;
  identity.push_back(
      {"micro bitwise", {BitwiseEqual(*unfused_out, *fused_out) ? 1.0 : 0.0}});

  std::vector<Row> pipelines;
  auto pipeline = [&](const char* label, auto&& run) {
    const RunResult unfused = run(Baseline::kMemphisNoFusion);
    const RunResult fused = run(Baseline::kMemphis);
    identity.push_back({std::string(label) + " quality",
                        {unfused.quality == fused.quality ? 1.0 : 0.0}});
    pipelines.push_back(Row{label, {unfused.seconds, fused.seconds}});
  };
  pipeline("fig13a HCV", [](Baseline b) {
    return RunHcv(b, 270000, 2500, /*folds=*/3, /*num_regs=*/8);
  });
  pipeline("fig13b PNMF", [](Baseline b) {
    return RunPnmf(b, 8000, 256, /*rank=*/32, /*iterations=*/6);
  });
  pipeline("fig14a CLEAN",
           [](Baseline b) { return RunClean(b, /*scale_factor=*/15); });
  PrintTable("Fusion on paper pipelines, simulated seconds",
             {"MPH-NF", "MPH"}, pipelines);
  PrintTable("Fusion identity checks (1 = fused equals unfused)", {"equal"},
             identity);

  std::printf(
      "expected shape: fused wall <= unfused on the chain micro (one memory\n"
      "pass instead of six), fused sim <= unfused on every pipeline (fewer\n"
      "bytes charged per group), all identity checks 1.\n");
  return bench::Finish();
}
