// Figure 13(a): HCV -- grid search + cross-validated linear regression.
//
// Paper setup: 10 regularization parameters over cross-validated linRegDS
// (Example 4.1), inputs 5-100 GB. Paper result: MPH 9.6x over Base by
// reusing t(X)%*%X and t(X)%*%y per fold and prefetching concurrent jobs;
// Base-A gains ~2x from async operators alone; MPH is ~20% over MPH-NA;
// LIMA reuses only local intermediates (small inputs); HELIX ~ Base.

#include "bench/bench_util.h"
#include "workloads/datasets.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunHcv;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig13a_hcv");
  const int folds = 3;
  const int regs = 8;
  const size_t cols = 2500;

  std::vector<Row> rows;
  for (size_t nominal_rows : {270000ull, 1080000ull, 2700000ull}) {
    const double gb = workloads::NominalGb(nominal_rows, cols);
    char label[64];
    std::snprintf(label, sizeof(label), "%.0fGB input", gb);
    Row row{label, {}};
    for (Baseline b : {Baseline::kBase, Baseline::kBaseAsync, Baseline::kLima,
                       Baseline::kHelix, Baseline::kMemphisNoAsync,
                       Baseline::kMemphis}) {
      row.seconds.push_back(RunHcv(b, nominal_rows, cols, folds, regs).seconds);
    }
    rows.push_back(row);
  }
  PrintTable("Figure 13(a): HCV grid search / cross validation",
             {"Base", "Base-A", "LIMA", "HELIX", "MPH-NA", "MPH"}, rows);
  std::printf(
      "paper shape: MPH up to 9.6x over Base; Base-A ~2x; MPH ~20%% over\n"
      "MPH-NA; LIMA local-only; HELIX ~= Base (no coarse-grained reuse).\n");
  return bench::Finish();
}
