// Fuzzing-infrastructure throughput: programs verified per second for each
// stage budget of the metamorphic pipeline. Not a paper figure -- this bench
// sizes fuzz campaigns (how many runs fit in a CI minute) and catches
// pathological slowdowns in the generator, the oracle interpreter, or the
// mode-lattice sweep itself.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/lattice.h"
#include "fuzz/oracle.h"

using namespace memphis;
using namespace memphis::fuzz;

namespace {

double Seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fuzz_throughput");
  constexpr int kRuns = 200;
  constexpr uint64_t kSeed = 1;

  // Stage 1: generation only.
  const double gen = Seconds([&] {
    for (int i = 0; i < kRuns; ++i) {
      GeneratedProgram program = GenerateProgram(kSeed + i);
      (void)program.Script();
    }
  });

  // Stage 2: generation + full lattice differencing (the campaign loop).
  int divergences = 0;
  const auto sweep = [&](const std::vector<LatticePoint>& lattice) {
    return Seconds([&] {
      for (int i = 0; i < kRuns; ++i) {
        GeneratedProgram program = GenerateProgram(kSeed + i);
        DivergenceInfo info;
        if (ClassifyProgram(program, lattice, Tolerance{}, &info) ==
            PointVerdict::kDiverge) {
          ++divergences;
        }
      }
    });
  };
  const double smoke = sweep(SmokeLattice());
  const double full = sweep(DefaultLattice());

  std::printf("\nmemphis_fuzz throughput (%d programs, seed %llu)\n", kRuns,
              static_cast<unsigned long long>(kSeed));
  std::printf("%-28s %10s %14s\n", "stage", "seconds", "programs/s");
  std::printf("%-28s %10.3f %14.1f\n", "generate only", gen, kRuns / gen);
  std::printf("%-28s %10.3f %14.1f\n", "verify (smoke lattice, 4pt)", smoke,
              kRuns / smoke);
  std::printf("%-28s %10.3f %14.1f\n", "verify (default lattice, 8pt)", full,
              kRuns / full);
  std::printf("divergences: %d (expected 0 on a healthy tree)\n", divergences);
  const int obs_rc = bench::Finish();
  return divergences == 0 ? obs_rc : 1;
}
