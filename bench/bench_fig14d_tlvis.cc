// Figure 14(d): TLVIS -- transfer learning feature extraction.
//
// Paper setup: three pre-trained CNNs (AlexNet, VGG16, ResNet18) with
// several extraction layers each over 10K test images; eviction injection
// compiles evict(100) between models. Paper result: MPH 2x (CIFAR-10) and
// 3x (ImageNet) over Base-G; VISTA ~= MPH (script-level CSE); PyTorch 1.9x
// over Base-G but 1.5x slower than MPH (no cross-pipeline reuse),
// requiring empty_cache() between models.

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunTlvis;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig14d_tlvis");
  const size_t images = 160;  // Nominal 10K, dimension-scaled.

  std::vector<Row> rows;
  for (bool imagenet : {false, true}) {
    Row row{imagenet ? "ImageNet (nominal 10K)" : "CIFAR-10 (nominal 10K)",
            {}};
    for (Baseline b : {Baseline::kBase, Baseline::kPyTorchClr,
                       Baseline::kVista, Baseline::kMemphis}) {
      row.seconds.push_back(RunTlvis(b, images, imagenet).seconds);
    }
    rows.push_back(row);
  }
  PrintTable("Figure 14(d): TLVIS transfer learning feature extraction",
             {"Base-G", "PyTorch-Clr", "VISTA", "MPH"}, rows);
  std::printf(
      "paper shape: MPH 2x/3x over Base-G (CIFAR/ImageNet) by reusing\n"
      "forward-pass prefixes across extraction layers; VISTA ~= MPH;\n"
      "PyTorch needs manual empty_cache() between models.\n");
  return bench::Finish();
}
