// Figure 13(b): PNMF -- Poisson non-negative matrix factorization.
//
// Paper setup: MovieLens (7M x 27K) rank 100, varying iteration counts.
// Paper result: past ~30 iterations Base and LIMA blow up because Spark's
// lazy evaluation re-executes all previous iterations in every job; MPH's
// compiler-placed checkpoints persist the distributed factor W each
// iteration, yielding 7.9x.

#include "bench/bench_util.h"

using namespace memphis;
using namespace memphis::bench;
using workloads::Baseline;
using workloads::RunPnmf;

int main(int argc, char** argv) {
  bench::Init(argc, argv, "fig13b_pnmf");
  // Dimension-scaled MovieLens; W (rows x rank) is large enough to stay
  // distributed, which is what makes the checkpoints matter.
  const size_t rows = 8000;
  const size_t cols = 256;
  const size_t rank = 32;

  std::vector<Row> rows_out;
  for (int iterations : {3, 6, 9, 12}) {
    Row row{"iters=" + std::to_string(iterations), {}};
    for (Baseline b :
         {Baseline::kBase, Baseline::kLima, Baseline::kMemphis}) {
      row.seconds.push_back(RunPnmf(b, rows, cols, rank, iterations).seconds);
    }
    rows_out.push_back(row);
  }
  PrintTable("Figure 13(b): PNMF matrix factorization (MovieLens-shaped)",
             {"Base", "LIMA", "MPH"}, rows_out);
  std::printf(
      "paper shape: Base/LIMA grow super-linearly with iterations (lazy\n"
      "re-execution); MPH stays linear via checkpoint placement (7.9x).\n");
  return bench::Finish();
}
