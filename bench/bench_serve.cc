// Serving-layer benchmark: shared cross-session lineage cache vs the
// one-session-per-job baseline, plus an overload section demonstrating
// explicit load shedding.
//
//   ./bench_serve [--smoke] [--trace=FILE] [--metrics=FILE] [--journal=FILE]
//
// Closed-loop tenant clients submit mixed named workloads (ridge /
// gridsearch / stats over per-tenant inputs) and wait for each result. In
// shared mode a tenant's Gram matrix and solve products survive session
// churn through the SharedLineageStore, so repeat requests mostly hit; in
// per-session mode every request pays the full pipeline. Latency
// percentiles here are *exact* (computed from the sorted per-request
// latency vector, not from histogram buckets).
//
// scripts/validate_bench.py checks the emitted BENCH_serve.json: schema,
// outcome accounting, that shared mode's lineage hit rate materially beats
// per-session mode's, and that the observer-effect section (the same
// traffic with tracing + journal on vs off) stays within 3% -- the
// observability layer's cost contract, measured end to end.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "serve/session_manager.h"
#include "serve/workloads.h"

using namespace memphis;

namespace {

struct Traffic {
  int tenants = 3;
  int clients_per_tenant = 2;
  int requests_per_client = 8;
  size_t rows = 384;
  size_t cols = 24;
  int workers = 4;
};

/// Everything one mode run produces: exact latencies plus reuse counters.
struct ModeStats {
  std::vector<double> latencies_ms;
  int64_t probes = 0;
  int64_t hits = 0;
  int64_t cross_session_hits = 0;
  int64_t warmed = 0;
  int completed = 0;
  int rejected = 0;
  int expired = 0;
  int failed = 0;

  void Absorb(const serve::RequestResult& result) {
    switch (result.outcome) {
      case serve::RequestOutcome::kCompleted:
        ++completed;
        latencies_ms.push_back(result.total_ms);
        probes += result.cache_probes;
        hits += result.cache_hits;
        cross_session_hits += result.cross_session_hits;
        warmed += result.warmed_entries;
        break;
      case serve::RequestOutcome::kRejected: ++rejected; break;
      case serve::RequestOutcome::kDeadlineExpired: ++expired; break;
      default: ++failed; break;
    }
  }

  double HitRate() const {
    return probes > 0 ? static_cast<double>(hits) / static_cast<double>(probes)
                      : 0.0;
  }
  int Total() const { return completed + rejected + expired + failed; }
};

/// Exact quantile of a latency sample (nearest-rank on the sorted copy).
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Runs the closed-loop tenant traffic against one cache mode. The session
/// config defaults to the stock SystemConfig; the verifier-effect section
/// overrides `verify_plans` per leg.
ModeStats RunMode(bool shared_cache, const Traffic& traffic,
                  VerifyMode verify_plans = SystemConfig{}.verify_plans) {
  serve::ServeConfig config;
  config.workers = traffic.workers;
  config.shared_cache = shared_cache;
  config.session.verify_plans = verify_plans;
  // Closed-loop clients hold at most clients_per_tenant requests of one
  // tenant in flight; headroom keeps admission out of this section's way.
  config.admission.tenant_max_in_flight = traffic.clients_per_tenant + 2;
  serve::SessionManager manager(config);

  const std::vector<std::string> names = serve::WorkloadNames();
  const int total_clients = traffic.tenants * traffic.clients_per_tenant;
  std::vector<std::vector<serve::RequestResult>> results(total_clients);
  std::vector<std::thread> clients;
  clients.reserve(total_clients);
  for (int c = 0; c < total_clients; ++c) {
    clients.emplace_back([&, c] {
      const int tenant_index = c / traffic.clients_per_tenant;
      const std::string tenant = "tenant" + std::to_string(tenant_index);
      for (int r = 0; r < traffic.requests_per_client; ++r) {
        // Per-tenant inputs (seeded by tenant) so reuse can only come from
        // the tenant's own partition; the workload mix cycles per client.
        serve::RequestTicketPtr ticket =
            manager.Submit(serve::MakeWorkloadRequest(
                tenant, names[(c + r) % names.size()], traffic.rows,
                traffic.cols, /*seed=*/11 + tenant_index));
        ticket->Wait();
        results[c].push_back(ticket->result());
      }
    });
  }
  for (std::thread& client : clients) client.join();
  manager.Shutdown();

  ModeStats stats;
  for (const auto& per_client : results) {
    for (const serve::RequestResult& result : per_client) {
      stats.Absorb(result);
    }
  }
  return stats;
}

/// Overload section: a burst far beyond one worker's capacity against a
/// tiny queue. The point is the *explicit* shedding -- every request
/// terminates as completed, rejected, or expired; nothing hangs.
ModeStats RunOverload(const Traffic& traffic) {
  serve::ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.admission.tenant_max_in_flight = 2;
  serve::SessionManager manager(config);

  const std::vector<std::string> names = serve::WorkloadNames();
  const int burst = 8 * traffic.tenants;
  std::vector<serve::RequestTicketPtr> tickets;
  tickets.reserve(burst);
  for (int i = 0; i < burst; ++i) {
    serve::ScriptRequest request = serve::MakeWorkloadRequest(
        "tenant" + std::to_string(i % traffic.tenants),
        names[i % names.size()], traffic.rows, traffic.cols, /*seed=*/11);
    if (i % 2 == 1) request.deadline_ms = 50;
    request.priority = i % 3;
    tickets.push_back(manager.Submit(request));
  }
  ModeStats stats;
  for (const auto& ticket : tickets) {
    ticket->Wait();
    stats.Absorb(ticket->result());
  }
  manager.Shutdown();
  return stats;
}

/// Observer-effect section: the wall-clock cost of running the shared-mode
/// traffic with full observability (tracing + journal) on versus off.
/// Repetitions interleave the two legs to decorrelate host drift and the
/// table records the min of each leg (same policy as the fusion micro);
/// validate_bench.py gates enabled <= disabled * 1.03. The section resets
/// the event rings between repetitions -- which would destroy the events a
/// --trace/--journal run asked to keep -- so main() skips it then.
void RunObserverEffect(const Traffic& traffic) {
  constexpr int kReps = 7;
  // The claim under test is steady-state per-request overhead, so the
  // measurement leg must (a) be long enough to amortize the per-thread fixed
  // costs a fresh SessionManager pays only once (ring allocation on a
  // worker's first emission, name interning, the one-time clock
  // calibration) -- with the 3-request smoke traffic those fixed costs
  // alone would read as a >2x "overhead" -- and (b) have a deterministic
  // schedule: on a small host an oversubscribed closed loop turns scheduler
  // interleaving into multi-percent leg-to-leg noise that would swamp the
  // 3% gate. One worker serving one tenant's single closed-loop client
  // executes the identical instruction stream on every leg; a second tenant
  // would make the lone worker rebuild its session on every alternation,
  // and the resulting warm/harvest event flood measures session churn, not
  // the steady-state request path.
  Traffic load = traffic;
  load.workers = 1;
  load.clients_per_tenant = 1;
  load.tenants = 1;
  load.requests_per_client = std::max(load.requests_per_client, 192);
  // Small rings bound the section's footprint: every repetition's worker and
  // client threads register fresh rings that outlive them, and the events
  // are discarded after each repetition anyway. Emission cost per event does
  // not depend on ring size, so the measurement is unaffected.
  obs::SetTraceRingCapacity(size_t{1} << 9);
  obs::SetJournalRingCapacity(size_t{1} << 9);
  double best[2] = {std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
  for (int rep = 0; rep < kReps; ++rep) {
    for (int leg = 0; leg < 2; ++leg) {
      const bool observed = leg == 1;
      obs::EnableTracing(observed);
      obs::EnableJournal(observed);
      const auto start = std::chrono::steady_clock::now();
      RunMode(/*shared_cache=*/true, load);
      best[leg] = std::min(
          best[leg], std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
      obs::EnableTracing(false);
      obs::EnableJournal(false);
      // Workers and clients are joined by RunMode: no thread is emitting,
      // so draining here honors the quiescence contract.
      obs::ResetTrace();
      obs::ResetJournal();
    }
  }
  obs::SetTraceRingCapacity(size_t{1} << 17);
  obs::SetJournalRingCapacity(size_t{1} << 17);
  bench::PrintTable(
      "Serve observer effect (s)", {"disabled", "enabled"},
      {{"wall_min_of_7", {best[0], best[1]}},
       {"overhead_ratio", {1.0, best[0] > 0 ? best[1] / best[0] : 0.0}}});
}

/// Verifier-effect section: the wall-clock cost of the static plan verifier
/// (compiler/verifier.h) at each mode over the same deterministic
/// steady-state load as the observer section. Legs interleave off / summary
/// / full within each repetition and the table records the min of each leg.
/// validate_bench.py gates summary (the release contract) at off * 1.02;
/// full is reported for reference. Compile results are cached per shape
/// signature, so the verifier runs once per unique block, not per request --
/// the gate proves that stays true end to end.
void RunVerifierEffect(const Traffic& traffic) {
  constexpr int kReps = 7;
  Traffic load = traffic;
  load.workers = 1;
  load.clients_per_tenant = 1;
  load.tenants = 1;
  load.requests_per_client = std::max(load.requests_per_client, 192);
  constexpr VerifyMode kModes[3] = {VerifyMode::kOff, VerifyMode::kSummary,
                                    VerifyMode::kFull};
  double best[3] = {std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
  for (int rep = 0; rep < kReps; ++rep) {
    for (int leg = 0; leg < 3; ++leg) {
      const auto start = std::chrono::steady_clock::now();
      RunMode(/*shared_cache=*/true, load, kModes[leg]);
      best[leg] = std::min(
          best[leg], std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    }
  }
  bench::PrintTable(
      "Serve verifier effect (s)", {"off", "summary", "full"},
      {{"wall_min_of_7", {best[0], best[1], best[2]}},
       {"overhead_ratio",
        {1.0, best[0] > 0 ? best[1] / best[0] : 0.0,
         best[0] > 0 ? best[2] / best[0] : 0.0}}});
}

}  // namespace

int main(int argc, char** argv) {
  Traffic traffic;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      traffic = {/*tenants=*/2, /*clients_per_tenant=*/1,
                 /*requests_per_client=*/3, /*rows=*/128, /*cols=*/12};
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::Init(static_cast<int>(passthrough.size()), passthrough.data(),
              "serve");

  std::printf("serve traffic: %d tenants x %d clients x %d requests, "
              "X = %zux%zu\n",
              traffic.tenants, traffic.clients_per_tenant,
              traffic.requests_per_client, traffic.rows, traffic.cols);

  const ModeStats per_session = RunMode(/*shared_cache=*/false, traffic);
  const ModeStats shared = RunMode(/*shared_cache=*/true, traffic);

  bench::PrintTable(
      "Serve latency (s)", {"per-session", "shared"},
      {{"p50", {Percentile(per_session.latencies_ms, 0.50) / 1e3,
                Percentile(shared.latencies_ms, 0.50) / 1e3}},
       {"p95", {Percentile(per_session.latencies_ms, 0.95) / 1e3,
                Percentile(shared.latencies_ms, 0.95) / 1e3}},
       {"p99", {Percentile(per_session.latencies_ms, 0.99) / 1e3,
                Percentile(shared.latencies_ms, 0.99) / 1e3}},
       {"mean", {Mean(per_session.latencies_ms) / 1e3,
                 Mean(shared.latencies_ms) / 1e3}}});

  bench::PrintTable(
      "Serve reuse", {"per-session", "shared"},
      {{"lineage_hit_rate", {per_session.HitRate(), shared.HitRate()}},
       {"cross_session_hits_per_req",
        {0.0, shared.completed > 0
                  ? static_cast<double>(shared.cross_session_hits) /
                        shared.completed
                  : 0.0}},
       {"warmed_per_req",
        {0.0, shared.completed > 0
                  ? static_cast<double>(shared.warmed) / shared.completed
                  : 0.0}}});

  if (obs::TracePath().empty() && obs::JournalPath().empty()) {
    RunObserverEffect(traffic);
    RunVerifierEffect(traffic);
  } else {
    std::printf("\nobserver-effect and verifier-effect sections skipped: "
                "--trace/--journal active "
                "(the observer section resets the rings this run wants to "
                "keep)\n");
  }

  const ModeStats overload = RunOverload(traffic);
  bench::PrintTable(
      "Serve overload", {"count"},
      {{"completed", {static_cast<double>(overload.completed)}},
       {"rejected", {static_cast<double>(overload.rejected)}},
       {"expired", {static_cast<double>(overload.expired)}},
       {"failed", {static_cast<double>(overload.failed)}},
       {"total", {static_cast<double>(overload.Total())}}});

  std::printf("\nhit rate: per-session=%.3f shared=%.3f; "
              "shared p95 %.2fms vs per-session %.2fms\n",
              per_session.HitRate(), shared.HitRate(),
              Percentile(shared.latencies_ms, 0.95),
              Percentile(per_session.latencies_ms, 0.95));
  return bench::Finish();
}
