// DML-style script frontend: run a MEMPHIS script from a file (or the
// embedded demo), with full compiler optimization and multi-backend reuse.
//
//   ./script_runner [script.dml] [--trace=FILE] [--metrics=FILE]
//
// Scripts are sequences of `name = expr;` statements plus
// `for (i in a:b) { ... }` loops; see compiler/parser.h for the grammar.
// --trace writes a Chrome trace (load in https://ui.perfetto.dev);
// --metrics writes a JSON snapshot of every runtime counter.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "compiler/parser.h"
#include "core/system.h"
#include "matrix/kernels.h"
#include "obs/flags.h"

using namespace memphis;

namespace {

constexpr const char* kDemoScript = R"(
  # Ridge regression with a grid over the regularizer. The expensive
  # products t(X) %*% X and t(y) %*% X sit *inside* the loop, unhoisted --
  # the lineage cache reuses them across iterations automatically.
  for (step in 1:5) {
    gram = t(X) %*% X;
    xty  = t(t(y) %*% X);
    A    = gram + diag(rand(32, 1, 1, 1, 1, 7) * (0.05 * step));
    beta = solve(A, xty);
    loss = mean((X %*% beta - y) ^ 2);
  }
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemoScript;
  std::string script_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs::ParseObsFlag(arg)) continue;
    script_path = arg;
  }
  if (!script_path.empty()) {
    std::ifstream file(script_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
    std::printf("running %s\n", script_path.c_str());
  } else {
    std::printf("running the embedded demo script:\n%s\n", kDemoScript);
  }

  {
    // Scoped so the context flushes its metrics into the global registry
    // before the --metrics snapshot below.
    SystemConfig config;
    config.reuse_mode = ReuseMode::kMemphis;
    MemphisSystem system(config);
    system.ctx().BindMatrix("X", kernels::RandGaussian(4000, 32, 1));
    system.ctx().BindMatrix("y", kernels::RandGaussian(4000, 1, 2));

    compiler::Program program = compiler::ParseProgram(source);
    system.Run(program);

    if (system.ctx().HasVar("loss")) {
      std::printf("loss = %.6f\n", system.ctx().FetchScalar("loss"));
    }
    std::printf("simulated time: %.4fs\n\n%s\n", system.ElapsedSeconds(),
                system.StatsReport().c_str());
  }

  if (!obs::WriteObsOutputs()) {
    std::fprintf(stderr, "failed to write --trace/--metrics output\n");
    return 1;
  }
  if (!obs::TracePath().empty()) {
    std::printf("wrote %s (load in https://ui.perfetto.dev)\n",
                obs::TracePath().c_str());
  }
  if (!obs::MetricsPath().empty()) {
    std::printf("wrote %s\n", obs::MetricsPath().c_str());
  }
  return 0;
}
