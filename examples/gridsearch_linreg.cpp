// Example 4.1 from the paper: grid-search hyper-parameter tuning over a
// direct-solve linear regression with a distributed feature matrix.
//
// Demonstrates the full multi-backend reuse story:
//  * t(X)%*%X compiles to a shuffle-based Spark aggregate (tsmm),
//  * t(y)%*%X to a broadcast-based multiply (Figure 2(b)),
//  * the collected result b is reused at the driver (Spark action reuse),
//  * the mm RDD is reused in the cluster (delayed caching),
//  * lazy garbage collection cleans the dangling y^T / X references.

#include <cstdio>

#include "core/system.h"
#include "matrix/kernels.h"
#include "workloads/builtins.h"
#include "workloads/pipelines.h"
#include "workloads/datasets.h"

using namespace memphis;
using workloads::Baseline;

namespace {

double RunGridSearch(Baseline baseline, const MatrixPtr& x,
                     const MatrixPtr& y) {
  SystemConfig config = workloads::MakeConfig(baseline);
  config.enable_gpu = false;  // Scale-out cluster workload.
  MemphisSystem system(config);
  ExecutionContext& ctx = system.ctx();
  ctx.BindMatrixWithId("Xg", x, "grid:X");
  ctx.BindMatrixWithId("yg", y, "grid:y");

  workloads::LinRegDS linreg(x->cols());
  double best_loss = 1e300;
  double best_reg = 0.0;
  for (double reg : {1e-3, 1e-2, 1e-1, 1.0, 10.0, 1e-3, 1e-2}) {
    linreg.Run(system, "Xg", "yg", reg, "beta");
    // Training loss as the selection criterion.
    auto score = compiler::MakeBasicBlock();
    {
      auto& dag = score->dag();
      auto err = dag.Op("-", {dag.Op("matmult", {dag.Read("Xg"),
                                                 dag.Read("beta")}),
                              dag.Read("yg")});
      dag.Write("loss", dag.Op("mean", {dag.Op("*", {err, err})}));
    }
    system.Run(*score);
    const double loss = ctx.FetchScalar("loss");
    if (loss < best_loss) {
      best_loss = loss;
      best_reg = reg;
    }
  }
  std::printf("  %-8s best reg=%-8.3g loss=%.5f  simulated %.3fs\n",
              workloads::ToString(baseline), best_reg, best_loss,
              system.ElapsedSeconds());
  if (baseline == Baseline::kMemphis) {
    std::printf("\n%s\n", system.StatsReport().c_str());
  }
  return system.ElapsedSeconds();
}

}  // namespace

int main() {
  // A feature matrix large enough to be compiled to Spark instructions.
  auto data = workloads::SyntheticRegression(40000, 64, /*seed=*/1);
  std::printf("grid-search linRegDS over a %zux%zu distributed matrix\n",
              data.X->rows(), data.X->cols());

  const double base = RunGridSearch(Baseline::kBase, data.X, data.y);
  const double mph = RunGridSearch(Baseline::kMemphis, data.X, data.y);
  std::printf("MEMPHIS speedup over Base: %.2fx\n", base / mph);
  return 0;
}
