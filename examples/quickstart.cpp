// Quickstart: trace, reuse, and inspect lineage with the MEMPHIS public API.
//
// Builds a tiny ridge-regression pipeline, runs it twice with the same
// hyper-parameter (full reuse) and once with a new one (partial reuse), then
// serializes a lineage trace and recomputes the result from it.

#include <cstdio>

#include "core/system.h"
#include "lineage/lineage_serde.h"
#include "matrix/kernels.h"
#include "runtime/recompute.h"

using namespace memphis;

int main() {
  // 1. Configure a session. Defaults mirror the paper's cluster setup
  //    (scaled down 1024x); kMemphis enables multi-backend reuse.
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  ExecutionContext& ctx = system.ctx();

  // 2. Bind inputs: a 2000x32 feature matrix and its labels.
  ctx.BindMatrix("X", kernels::RandGaussian(2000, 32, /*seed=*/1));
  ctx.BindMatrix("y", kernels::RandGaussian(2000, 1, /*seed=*/2));

  // 3. Build a basic block: beta = solve(t(X)%*%X + reg*I, t(X)%*%y).
  auto block = compiler::MakeBasicBlock();
  {
    compiler::HopDag& dag = block->dag();
    auto x = dag.Read("X");
    auto y = dag.Read("y");
    auto reg = dag.Read("reg");
    auto xtx = dag.Op("matmult", {dag.Op("transpose", {x}), x});
    auto ones = dag.Op("rand", {}, {32, 1, 1, 1, 1, 7});
    auto a = dag.Op("+", {xtx, dag.Op("diag", {dag.Op("*", {ones, reg})})});
    auto b = dag.Op("matmult", {dag.Op("transpose", {x}), y});
    dag.Write("beta", dag.Op("solve", {a, b}));
  }

  // 4. Run three configurations; the reg-independent products are reused.
  for (double reg : {0.1, 0.1, 1.0}) {
    ctx.BindScalar("reg", reg);
    system.Run(*block);
    std::printf("reg=%.1f  beta[0]=%+.4f  elapsed=%.4fs (simulated)\n", reg,
                ctx.FetchMatrix("beta")->At(0, 0), system.ElapsedSeconds());
  }

  // 5. Inspect reuse statistics.
  std::printf("\n%s\n", system.StatsReport().c_str());

  // 6. Serialize the result's lineage and recompute it from the log alone.
  auto trace = ctx.lineage().Get("beta");
  const std::string log = SerializeLineage(trace);
  std::printf("lineage log: %zu bytes, %zu nodes\n", log.size(),
              LineageDagSize(trace));
  MatrixPtr replayed = Recompute(
      log, {{"X", ctx.FetchMatrix("X")}, {"y", ctx.FetchMatrix("y")}});
  std::printf("recompute matches: %s\n",
              replayed->ApproxEquals(*ctx.FetchMatrix("beta")) ? "yes" : "no");
  return 0;
}
