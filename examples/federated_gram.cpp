// Deeper hierarchies (paper Section 5.4): a federated deployment where
// every worker is a full MEMPHIS system with its own hierarchical lineage
// cache — local reuse applies per site while the coordinator aggregates.

#include <cstdio>

#include "federated/federated.h"
#include "matrix/kernels.h"

using namespace memphis;

int main() {
  SystemConfig site_config;
  site_config.reuse_mode = ReuseMode::kMemphis;
  site_config.enable_gpu = false;
  federated::FederatedCoordinator fed(4, site_config);

  // Row-partition the training data across four sites.
  auto x = kernels::RandGaussian(8000, 24, 1);
  auto y = kernels::RandGaussian(8000, 1, 2);
  fed.Distribute("X", x);
  fed.Distribute("y", y);
  std::printf("federated ridge regression over 4 sites (%zux%zu total)\n\n",
              x->rows(), x->cols());

  auto gram_block = [] {
    auto block = compiler::MakeBasicBlock();
    auto& dag = block->dag();
    // Each site contributes its local gram / cross products; the global
    // products are the sums of the shards' contributions.
    dag.Write("gram", dag.Op("tsmm", {dag.Read("X")}));
    dag.Write("xty", dag.Op("matmult",
                            {dag.Op("transpose", {dag.Read("X")}),
                             dag.Read("y")}));
    return block;
  };

  // A small hyper-parameter grid: the per-site gram/xty computations are
  // loop-invariant, so every site's local lineage cache reuses them after
  // round one.
  for (double reg : {0.01, 0.1, 1.0}) {
    const double before = fed.ElapsedSeconds();
    fed.RunRound(gram_block);
    MatrixPtr gram = fed.AggregateSum("gram");
    MatrixPtr xty = fed.AggregateSum("xty");
    auto a = kernels::Binary(
        kernels::BinaryOp::kAdd, *gram,
        *kernels::Diag(*MatrixBlock::Create(gram->rows(), 1, reg)));
    MatrixPtr beta = kernels::Solve(*a, *xty);
    std::printf("reg=%-5.2f  beta[0]=%+.4f  round=%.2fms\n", reg,
                beta->At(0, 0), (fed.ElapsedSeconds() - before) * 1e3);
  }

  std::printf("\ntotal site cache hits: %lld (local reuse at each worker)\n",
              static_cast<long long>(fed.TotalSiteHits()));
  std::printf("coordinator virtual time: %.4fs (rounds run sites in "
              "parallel)\n",
              fed.ElapsedSeconds());
  return 0;
}
