// CLEAN-style example: enumerate data-cleaning pipelines with a downstream
// model in the loop, reusing the repeated primitives across pipelines
// (imputation, outlier removal, normalization share long prefixes).

#include <cstdio>

#include "core/system.h"
#include "workloads/builtins.h"
#include "workloads/cleaning.h"
#include "workloads/datasets.h"
#include "workloads/pipelines.h"

using namespace memphis;
using workloads::Baseline;
using workloads::CleanPrim;

int main() {
  SystemConfig config = workloads::MakeConfig(Baseline::kMemphis);
  config.enable_gpu = false;
  MemphisSystem system(config);
  ExecutionContext& ctx = system.ctx();

  auto aps = workloads::ApsLike(4000, 170, 0.006, /*seed=*/4);
  ctx.BindMatrixWithId("Xdirty", aps.X, "demo:aps");
  ctx.BindMatrixWithId("ylabels", aps.y, "demo:aps_y");
  std::printf("enumerating cleaning pipelines over a %zux%zu APS-like "
              "matrix (0.6%% missing)\n\n",
              aps.X->rows(), aps.X->cols());

  workloads::L2Svm svm;
  int index = 0;
  for (const auto& pipeline : workloads::EnumerateCleanPipelines()) {
    std::string description;
    for (CleanPrim primitive : pipeline) {
      description += std::string(description.empty() ? "" : " -> ") +
                     workloads::ToString(primitive);
    }
    auto block = workloads::BuildCleaningBlock(pipeline, 8, 17);
    const double before = system.ElapsedSeconds();
    system.CallFunction("pipe" + std::to_string(index),
                        {"Xdirty", "ylabels"}, {"Xclean", "yclean"},
                        [&] { system.Run(*block); });
    svm.Train(system, "Xclean", "yclean", 0.01, 2, "w");
    auto score = compiler::MakeBasicBlock();
    {
      auto& dag = score->dag();
      auto pred = dag.Op("sign", {dag.Op("matmult", {dag.Read("Xclean"),
                                                     dag.Read("w")})});
      dag.Write("acc", dag.Op("mean", {dag.Op("==", {pred,
                                                     dag.Read("yclean")})}));
    }
    system.Run(*score);
    std::printf("pipeline %2d: acc=%.3f  +%.1fms  %s\n", index,
                ctx.FetchScalar("acc"),
                (system.ElapsedSeconds() - before) * 1e3,
                description.c_str());
    ++index;
  }

  std::printf("\n%s\n", system.StatsReport().c_str());
  std::printf("note how later pipelines run faster: their prefixes "
              "(imputation, outlier\nremoval, normalization, PCA) are "
              "lineage-cache hits.\n");
  return 0;
}
