// Lineage serialization and exact recomputation (Section 3.2): share a
// serialized lineage trace and reproduce the intermediate elsewhere --
// the debugging workflow for heterogeneous multi-backend pipelines.

#include <cstdio>

#include "core/system.h"
#include "lineage/lineage_serde.h"
#include "matrix/kernels.h"
#include "runtime/recompute.h"

using namespace memphis;

int main() {
  // Session 1: a pipeline that mixes CP, Spark, and GPU placements.
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  config.gpu_offload_min_flops = 1e5;
  MemphisSystem producer(config);
  auto x = kernels::RandGaussian(6000, 32, 1);
  producer.ctx().BindMatrixWithId("X", x, "dataset:train");

  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    auto in = dag.Read("X");
    auto normalized = dag.Op("scale", {in});
    auto gram = dag.Op("matmult", {dag.Op("transpose", {normalized}),
                                   normalized});
    dag.Write("gram", dag.Op("*", {gram, dag.Literal(0.5)}));
  }
  producer.Run(*block);
  MatrixPtr original = producer.ctx().FetchMatrix("gram");

  // SERIALIZE the trace to a lineage log (a plain text artifact that can be
  // attached to a bug report or experiment record).
  auto trace = producer.ctx().lineage().Get("gram");
  const std::string log = SerializeLineage(trace);
  std::printf("lineage log (%zu nodes, %zu bytes):\n%s\n",
              LineageDagSize(trace), log.size(), log.c_str());

  // Session 2 ("a different environment"): RECOMPUTE from the log alone.
  // Only the external inputs need to be provided; every operator re-runs
  // through the reference kernels regardless of its original placement.
  MatrixPtr replayed = Recompute(log, {{"dataset:train", x}});
  std::printf("replayed matches original: %s\n",
              replayed->ApproxEquals(*original, 1e-9) ? "yes" : "no");

  // The same log round-trips through the in-memory representation.
  auto restored = DeserializeLineage(log);
  std::printf("round-trip structural equality: %s\n",
              LineageEquals(trace, restored) ? "yes" : "no");
  return 0;
}
