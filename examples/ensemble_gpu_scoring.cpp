// Figure 9(b) from the paper: ensemble scoring with two pre-trained CNNs
// whose allocation patterns differ, demonstrating GPU pointer reuse,
// recycling, and the compiler's eviction injection between phase shifts.

#include <cstdio>

#include "core/system.h"
#include "matrix/kernels.h"
#include "workloads/datasets.h"
#include "workloads/dnn.h"
#include "workloads/pipelines.h"

using namespace memphis;
using workloads::Baseline;

int main() {
  const kernels::TensorShape shape{3, 16, 16};
  const size_t images = 128;
  const int batch = 16;
  const double duplicate_frac = 0.4;  // Pixel-id duplicates in the stream.

  std::printf(
      "ensemble CNN scoring: %zu images (%d%% duplicates), batch=%d\n",
      images, static_cast<int>(duplicate_frac * 100), batch);

  for (Baseline baseline :
       {Baseline::kBase, Baseline::kPyTorchClr, Baseline::kMemphis}) {
    workloads::RunResult result =
        workloads::RunGpuEnsemble(baseline, images, batch, duplicate_frac);
    std::printf("  %-12s %.4fs (simulated)\n",
                workloads::ToString(baseline), result.seconds);
    if (baseline == Baseline::kMemphis) {
      std::printf("\n%s\n", result.stats.c_str());
    }
  }

  // The same two models driven directly, to show the Live/Free pointer
  // mechanics: run model A twice (recycling), then a shifted pattern.
  SystemConfig config = workloads::MakeConfig(Baseline::kMemphis);
  MemphisSystem system(config);
  ExecutionContext& ctx = system.ctx();
  workloads::CnnModel model_a = workloads::SmallCnnA(shape, 10);
  workloads::CnnModel model_b = workloads::SmallCnnB(shape, 10);
  workloads::BindCnnWeights(ctx, model_a, "a", 1);
  workloads::BindCnnWeights(ctx, model_b, "b", 2);
  auto fwd_a = workloads::BuildCnnForward(model_a, "a", "img", "sa", -1, true);
  auto fwd_b = workloads::BuildCnnForward(model_b, "b", "img", "sb", -1, true);

  auto imgs = workloads::ImagesLike(batch, shape, 0.0, 3);
  ctx.BindMatrixWithId("img", imgs, "demo:batch");
  system.Run(*fwd_a);
  system.Run(*fwd_a);  // Full reuse of the first pass.
  const ExecStats& exec = system.ctx().stats();
  std::printf("after two A passes : CP=%lld GPU=%lld hits=%lld\n",
              static_cast<long long>(exec.cp_instructions.value()),
              static_cast<long long>(exec.gpu_instructions.value()),
              static_cast<long long>(exec.reuse_hits.value()));
  system.Run(*fwd_b);  // Allocation pattern shifts (Figure 9(b)).
  std::printf("after the B pass   : recycled=%ld reused-ptrs=%ld\n",
              static_cast<long>(ctx.gpu_cache().stats().recycled_exact),
              static_cast<long>(ctx.gpu_cache().stats().reused_pointers));
  return 0;
}
